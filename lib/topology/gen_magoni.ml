type params = {
  routers : int;
  core_fraction : float;
  leaf_fraction : float;
  core_edges_per_node : int;
  tree_cross_link_prob : float;
}

type t = {
  graph : Graph.t;
  core : Graph.node array;
  tree : Graph.node array;
  leaves : Graph.node array;
}

let default_params routers =
  {
    routers;
    core_fraction = 0.15;
    leaf_fraction = 0.40;
    core_edges_per_node = 3;
    tree_cross_link_prob = 0.10;
  }

let validate p =
  if p.routers < 20 then invalid_arg "Gen_magoni.generate: need at least 20 routers";
  if p.core_fraction <= 0.0 || p.leaf_fraction <= 0.0 || p.core_fraction +. p.leaf_fraction >= 1.0
  then invalid_arg "Gen_magoni.generate: fractions must be positive and sum below 1";
  if p.tree_cross_link_prob < 0.0 || p.tree_cross_link_prob > 1.0 then
    invalid_arg "Gen_magoni.generate: tree_cross_link_prob outside [0,1]";
  let n_core = int_of_float (p.core_fraction *. float_of_int p.routers) in
  if n_core <= p.core_edges_per_node + 1 then
    invalid_arg "Gen_magoni.generate: core smaller than the attachment parameter"

let generate p ~seed =
  validate p;
  let rng = Prelude.Prng.create seed in
  let n = p.routers in
  let n_core = int_of_float (p.core_fraction *. float_of_int n) in
  let n_leaf = int_of_float (p.leaf_fraction *. float_of_int n) in
  let n_tree = n - n_core - n_leaf in
  let b = Builder.create n in
  (* Core: preferential-attachment mesh over nodes [0, n_core). *)
  let m = p.core_edges_per_node in
  for u = 0 to m do
    for v = u + 1 to m do
      ignore (Builder.add_edge b u v)
    done
  done;
  Gen_ba.into_builder b ~first_node:(m + 1) ~count:(n_core - m - 1) ~edges_per_node:m ~rng;
  (* Access trees: nodes [n_core, n_core + n_tree).  A new tree router hangs
     off the core (degree-preferential, so big core routers sponsor more
     trees) with probability 0.3, otherwise off an earlier tree router
     (uniform), which grows tree-shaped access hierarchies of increasing
     depth. *)
  let pick_core_preferential () =
    (* Endpoint-pool equivalent: two-step — pick a random core edge endpoint
       by scanning total degree; core is small so a linear scan is fine. *)
    let total = ref 0 in
    for v = 0 to n_core - 1 do
      total := !total + Builder.degree b v
    done;
    let target = Prelude.Prng.int rng !total in
    let acc = ref 0 and chosen = ref 0 in
    (try
       for v = 0 to n_core - 1 do
         acc := !acc + Builder.degree b v;
         if !acc > target then begin
           chosen := v;
           raise Exit
         end
       done
     with Exit -> ());
    !chosen
  in
  for node = n_core to n_core + n_tree - 1 do
    let parent =
      if node = n_core || Prelude.Prng.unit_float rng < 0.3 then pick_core_preferential ()
      else Prelude.Prng.int_in_range rng ~lo:n_core ~hi:(node - 1)
    in
    ignore (Builder.add_edge b node parent);
    if Prelude.Prng.unit_float rng < p.tree_cross_link_prob then begin
      (* One redundancy link toward the core or another tree router. *)
      let other =
        if Prelude.Prng.bool rng then pick_core_preferential ()
        else Prelude.Prng.int_in_range rng ~lo:n_core ~hi:node
      in
      ignore (Builder.add_edge b node other)
    end
  done;
  (* Leaves: degree-1 routers [n_core + n_tree, n), attached uniformly to
     tree routers (or to the core when there are no trees). *)
  for node = n_core + n_tree to n - 1 do
    let parent =
      if n_tree > 0 then Prelude.Prng.int_in_range rng ~lo:n_core ~hi:(n_core + n_tree - 1)
      else Prelude.Prng.int rng n_core
    in
    ignore (Builder.add_edge b node parent)
  done;
  let graph = Builder.to_graph b in
  {
    graph;
    core = Array.init n_core (fun i -> i);
    tree = Array.init n_tree (fun i -> n_core + i);
    leaves = Array.init n_leaf (fun i -> n_core + n_tree + i);
  }


type fit_result = {
  fitted : params;
  alpha : float;
  mean_distance : float;
  error : float;
}

let measure params ~seed =
  let map = generate params ~seed in
  let alpha =
    match Degree.power_law_alpha map.graph ~x_min:3 with
    | a -> a
    | exception Invalid_argument _ -> nan
  in
  let rng = Prelude.Prng.create (seed + 1) in
  let mean_distance = Bfs.mean_pairwise_distance map.graph ~samples:1500 ~rng in
  (alpha, mean_distance)

let fit ~routers ~target_alpha ~target_mean_distance ~seed =
  if target_alpha <= 1.0 || target_mean_distance <= 0.0 then
    invalid_arg "Gen_magoni.fit: targets must be positive (alpha > 1)";
  let candidates =
    List.concat_map
      (fun core_fraction ->
        List.concat_map
          (fun core_edges_per_node ->
            List.map
              (fun tree_cross_link_prob ->
                {
                  (default_params routers) with
                  core_fraction;
                  core_edges_per_node;
                  tree_cross_link_prob;
                })
              [ 0.05; 0.15; 0.30 ])
          [ 2; 3; 4 ])
      [ 0.10; 0.15; 0.25 ]
  in
  let score params =
    let alpha, mean_distance = measure params ~seed in
    if Float.is_nan alpha || mean_distance <= 0.0 then (infinity, nan, nan)
    else begin
      let ea = abs_float (alpha -. target_alpha) /. target_alpha in
      let ed = abs_float (mean_distance -. target_mean_distance) /. target_mean_distance in
      (ea +. ed, alpha, mean_distance)
    end
  in
  let best =
    List.fold_left
      (fun acc params ->
        let error, alpha, mean_distance = score params in
        match acc with
        | Some b when b.error <= error -> acc
        | _ -> Some { fitted = params; alpha; mean_distance; error })
      None candidates
  in
  match best with Some r -> r | None -> assert false
