type params = {
  transit_domains : int;
  routers_per_transit : int;
  stubs_per_transit_router : int;
  routers_per_stub : int;
  intra_edge_prob : float;
}

let default_params =
  {
    transit_domains = 2;
    routers_per_transit = 4;
    stubs_per_transit_router = 2;
    routers_per_stub = 6;
    intra_edge_prob = 0.4;
  }

let validate p =
  if p.transit_domains < 1 || p.routers_per_transit < 1 || p.stubs_per_transit_router < 0
     || p.routers_per_stub < 1
  then invalid_arg "Gen_transit_stub.generate: counts must be positive";
  if p.intra_edge_prob < 0.0 || p.intra_edge_prob > 1.0 then
    invalid_arg "Gen_transit_stub.generate: intra_edge_prob outside [0,1]"

let node_total p =
  let transit = p.transit_domains * p.routers_per_transit in
  transit + (transit * p.stubs_per_transit_router * p.routers_per_stub)

(* Connect the node range [first, first + count) into a random tree plus
   extra meshing edges with probability [prob] per pair. *)
let mesh_domain b rng ~first ~count ~prob =
  for i = 1 to count - 1 do
    let anchor = first + Prelude.Prng.int rng i in
    ignore (Builder.add_edge b (first + i) anchor)
  done;
  for i = 0 to count - 1 do
    for j = i + 1 to count - 1 do
      if Prelude.Prng.unit_float rng < prob then ignore (Builder.add_edge b (first + i) (first + j))
    done
  done

let generate p ~seed =
  validate p;
  let rng = Prelude.Prng.create seed in
  let b = Builder.create (node_total p) in
  let transit_count = p.transit_domains * p.routers_per_transit in
  (* Transit domains, internally meshed. *)
  for d = 0 to p.transit_domains - 1 do
    mesh_domain b rng ~first:(d * p.routers_per_transit) ~count:p.routers_per_transit
      ~prob:p.intra_edge_prob
  done;
  (* Backbone: chain the transit domains, plus one random cross link per
     adjacent pair for redundancy. *)
  for d = 1 to p.transit_domains - 1 do
    let prev_first = (d - 1) * p.routers_per_transit and cur_first = d * p.routers_per_transit in
    let a = prev_first + Prelude.Prng.int rng p.routers_per_transit in
    let c = cur_first + Prelude.Prng.int rng p.routers_per_transit in
    ignore (Builder.add_edge b a c);
    let a' = prev_first + Prelude.Prng.int rng p.routers_per_transit in
    let c' = cur_first + Prelude.Prng.int rng p.routers_per_transit in
    ignore (Builder.add_edge b a' c')
  done;
  (* Stub domains hang off their sponsoring transit router. *)
  let next = ref transit_count in
  for tr = 0 to transit_count - 1 do
    for _ = 1 to p.stubs_per_transit_router do
      let first = !next in
      next := !next + p.routers_per_stub;
      mesh_domain b rng ~first ~count:p.routers_per_stub ~prob:p.intra_edge_prob;
      let gateway = first + Prelude.Prng.int rng p.routers_per_stub in
      ignore (Builder.add_edge b tr gateway)
    done
  done;
  Builder.to_graph b
