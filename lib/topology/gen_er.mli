(** Erdős–Rényi G(n, m) random graphs.

    A homogeneous-degree baseline: the paper's mechanism relies on the
    heavy-tailed core of real maps, so experiments on ER graphs show how much
    of the quality comes from that structure (negative control). *)

val generate : nodes:int -> edges:int -> seed:int -> Graph.t
(** [generate ~nodes ~edges ~seed] draws [edges] distinct edges uniformly.
    @raise Invalid_argument when [edges] exceeds [nodes * (nodes-1) / 2]. *)

val generate_connected : nodes:int -> edges:int -> seed:int -> Graph.t
(** Like {!generate} but first lays a uniform random spanning tree so the
    result is connected; requires [edges >= nodes - 1]. *)
