type t = { adjacency : Prelude.Vec.t array; mutable edges : int }

let create n =
  if n < 0 then invalid_arg "Builder.create: negative node count";
  { adjacency = Array.init n (fun _ -> Prelude.Vec.create ()); edges = 0 }

let node_count b = Array.length b.adjacency
let edge_count b = b.edges

let check b v = if v < 0 || v >= node_count b then invalid_arg "Builder: node out of range"

let degree b v =
  check b v;
  Prelude.Vec.length b.adjacency.(v)

let mem_edge b u v =
  check b u;
  check b v;
  (* Scan the smaller adjacency list. *)
  let u, v = if degree b u <= degree b v then (u, v) else (v, u) in
  Prelude.Vec.exists b.adjacency.(u) (fun w -> w = v)

let add_edge b u v =
  check b u;
  check b v;
  if u = v || mem_edge b u v then false
  else begin
    Prelude.Vec.push b.adjacency.(u) v;
    Prelude.Vec.push b.adjacency.(v) u;
    b.edges <- b.edges + 1;
    true
  end

let iter_neighbors b v f =
  check b v;
  Prelude.Vec.iter b.adjacency.(v) f

let to_graph b =
  let acc = ref [] in
  for u = node_count b - 1 downto 0 do
    Prelude.Vec.iter b.adjacency.(u) (fun v -> if u < v then acc := (u, v) :: !acc)
  done;
  Graph.of_edges ~node_count:(node_count b) !acc
