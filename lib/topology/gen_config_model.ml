let generate ~degrees ~seed =
  let n = Array.length degrees in
  Array.iter (fun d -> if d < 0 then invalid_arg "Gen_config_model.generate: negative degree") degrees;
  let rng = Prelude.Prng.create seed in
  (* One stub per degree unit; a uniform matching of stubs is a uniform
     shuffle paired off two by two. *)
  let total = Array.fold_left ( + ) 0 degrees in
  let stubs = Array.make total 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!cursor) <- v;
        incr cursor
      done)
    degrees;
  Prelude.Prng.shuffle_in_place rng stubs;
  let b = Builder.create n in
  let pairs = total / 2 in
  for i = 0 to pairs - 1 do
    ignore (Builder.add_edge b stubs.(2 * i) stubs.((2 * i) + 1))
  done;
  Builder.to_graph b

let power_law_degrees ~n ~alpha ~d_min ~d_max ~rng =
  if d_min < 1 || d_max < d_min then invalid_arg "Gen_config_model.power_law_degrees: bad range";
  let span = d_max - d_min + 1 in
  Array.init n (fun _ ->
      (* Zipf rank r in [1, span] maps to degree d_min + r - 1, giving
         P(d) ~ (d - d_min + 1)^-alpha ~ d^-alpha for d >> d_min shifts. *)
      d_min + Prelude.Prng.zipf rng ~n:span ~s:alpha - 1)

let largest_component g =
  let n = Graph.node_count g in
  if n = 0 then g
  else begin
    let uf = Prelude.Union_find.create n in
    List.iter (fun (u, v) -> ignore (Prelude.Union_find.union uf u v)) (Graph.edges g);
    let size = Hashtbl.create 64 in
    for v = 0 to n - 1 do
      let root = Prelude.Union_find.find uf v in
      Hashtbl.replace size root (1 + Option.value ~default:0 (Hashtbl.find_opt size root))
    done;
    let best_root, _ =
      Hashtbl.fold (fun root s ((_, best_s) as acc) -> if s > best_s then (root, s) else acc) size (0, 0)
    in
    (* Dense relabelling of the winning component. *)
    let fresh = Hashtbl.create 256 in
    let next = ref 0 in
    for v = 0 to n - 1 do
      if Prelude.Union_find.find uf v = best_root then begin
        Hashtbl.add fresh v !next;
        incr next
      end
    done;
    let edges =
      List.filter_map
        (fun (u, v) ->
          match (Hashtbl.find_opt fresh u, Hashtbl.find_opt fresh v) with
          | Some u', Some v' -> Some (u', v')
          | _ -> None)
        (Graph.edges g)
    in
    Graph.of_edges ~node_count:!next edges
  end

let generate_power_law ~n ~alpha ~d_min ~d_max ~seed =
  let rng = Prelude.Prng.create (seed + 31) in
  let degrees = power_law_degrees ~n ~alpha ~d_min ~d_max ~rng in
  let g = generate ~degrees ~seed in
  (g, largest_component g)
