(** Generalized Linear Preference model (Bu & Towsley, INFOCOM 2002).

    Refines Barabási–Albert to match measured Internet maps more closely:
    attachment probability is proportional to [degree - beta] with
    [beta < 1], and with probability [p] each step adds links between
    existing nodes instead of a new node, producing a denser, more clustered
    core and a power-law exponent tunable toward the measured ~2.2. *)

val generate :
  nodes:int -> m:int -> p:float -> beta:float -> seed:int -> Graph.t
(** [generate ~nodes ~m ~p ~beta ~seed].
    @raise Invalid_argument unless [m >= 1], [0 <= p < 1] and [beta < 1]. *)
