(** Reading and writing router maps.

    The paper runs on a measured Internet map (Magoni & Hoerdt's [nem]
    output).  This module lets a user substitute a real map for the
    synthetic generators: the edge-list format is the lingua franca of
    topology datasets (CAIDA, Rocketfuel, nem exports all convert to it
    trivially).

    Format: one ["u v"] edge per line, whitespace separated; blank lines
    and lines starting with [#] are ignored; node ids are non-negative
    integers, renumbered densely on load when [compact] is set. *)

val write_edge_list : Graph.t -> out_channel -> unit
(** Each undirected edge once ([u < v]), preceded by a [#] header with node
    and edge counts. *)

val save_edge_list : Graph.t -> string -> unit
(** {!write_edge_list} to a file path. *)

val read_edge_list : ?compact:bool -> in_channel -> Graph.t
(** [read_edge_list ic] parses the stream.  With [compact] (default [true])
    node ids are renumbered densely in first-appearance order; otherwise the
    graph has [max id + 1] nodes and unreferenced ids become isolated nodes.
    @raise Failure with the offending line number on a malformed line or a
    negative id; self-loops and duplicate edges raise the
    [Invalid_argument] of {!Graph.of_edges}. *)

val load_edge_list : ?compact:bool -> string -> Graph.t
(** {!read_edge_list} from a file path. *)

val to_dot : ?highlight:Graph.node list -> Graph.t -> string
(** Graphviz rendering (undirected); [highlight] nodes are filled — used to
    mark landmarks in small illustrations. *)
