(** Weighted single-source shortest paths.

    Latency-weighted distances back the Vivaldi/GNP baselines and the
    latency-weighted variant of the path-tree metric (ablation 1 in
    DESIGN.md).  Edge weights come from a {!Latency.t} assignment. *)

val distances : Graph.t -> weight:(Graph.node -> Graph.node -> float) -> Graph.node -> float array
(** [distances g ~weight src] maps every node to its weighted distance from
    [src]; unreachable nodes get [infinity].  @raise Invalid_argument on a
    negative edge weight. *)

val distance :
  Graph.t -> weight:(Graph.node -> Graph.node -> float) -> Graph.node -> Graph.node -> float
(** Single-pair weighted distance with early exit. *)

val parents : Graph.t -> weight:(Graph.node -> Graph.node -> float) -> Graph.node -> int array
(** Shortest-path tree with deterministic tie-breaking (on equal distance the
    lower-id parent wins); source and unreachable nodes map to [-1]. *)
