type model =
  | Uniform of { lo : float; hi : float }
  | Core_weighted of { core_ms : float; edge_ms : float; threshold : int }
  | Hop_count

type t = { table : (int * int, float) Hashtbl.t }

let key u v = if u < v then (u, v) else (v, u)

let assign g model ~seed =
  let rng = Prelude.Prng.create seed in
  let table = Hashtbl.create (2 * Graph.edge_count g) in
  List.iter
    (fun (u, v) ->
      let latency =
        match model with
        | Hop_count -> 1.0
        | Uniform { lo; hi } ->
            if hi < lo then invalid_arg "Latency.assign: hi < lo";
            lo +. Prelude.Prng.float rng (hi -. lo)
        | Core_weighted { core_ms; edge_ms; threshold } ->
            let mean = if Graph.degree g u >= threshold && Graph.degree g v >= threshold then core_ms else edge_ms in
            (* Exponential with a small floor so no link is free. *)
            0.1 +. Prelude.Prng.exponential rng ~mean
      in
      Hashtbl.replace table (key u v) latency)
    (Graph.edges g);
  { table }

let get t u v =
  match Hashtbl.find_opt t.table (key u v) with
  | Some l -> l
  | None -> raise Not_found

let weight_fn t u v = get t u v

let path_latency t path =
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (acc +. get t a b) rest
    | [ _ ] | [] -> acc
  in
  loop 0.0 path
