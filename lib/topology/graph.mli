(** Immutable undirected graph in compressed-sparse-row form.

    Router-level Internet maps reach tens of thousands of nodes; the CSR
    layout gives O(1) access to a node's neighbor slice with no per-edge
    boxing, which keeps BFS/Dijkstra cache-friendly.  Nodes are dense
    integers [0 .. node_count - 1].  Parallel edges and self-loops are
    rejected at construction. *)

type t

type node = int

val node_count : t -> int
val edge_count : t -> int
(** Number of undirected edges. *)

val degree : t -> node -> int
val neighbors : t -> node -> int array
(** Fresh array of the neighbors of a node, in increasing id order. *)

val iter_neighbors : t -> node -> (node -> unit) -> unit
(** Allocation-free neighbor traversal. *)

val fold_neighbors : t -> node -> ('a -> node -> 'a) -> 'a -> 'a
val mem_edge : t -> node -> node -> bool
(** O(log degree) membership test. *)

val edges : t -> (node * node) list
(** Every undirected edge once, as [(u, v)] with [u < v], lexicographic. *)

val max_degree : t -> int
val mean_degree : t -> float

val of_edges : node_count:int -> (node * node) list -> t
(** Build from an edge list.  Duplicate edges (in either orientation) and
    self-loops raise [Invalid_argument], as do out-of-range endpoints. *)

val is_connected : t -> bool
val nodes_with_degree : t -> int -> node list
(** Nodes whose degree equals the given value, increasing id order. *)

val nodes_matching : t -> (node -> int -> bool) -> node list
(** [nodes_matching g f] is the nodes [v] with [f v (degree g v)], increasing
    id order. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary ("graph: n nodes, m edges, ..."). *)
