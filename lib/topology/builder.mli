(** Mutable graph under construction.

    Generators add edges incrementally, need degree and membership queries
    while growing, and finally freeze into an immutable {!Graph.t}. *)

type t

val create : int -> t
(** [create n] has [n] nodes and no edges. *)

val node_count : t -> int
val edge_count : t -> int
val degree : t -> int -> int
val mem_edge : t -> int -> int -> bool

val add_edge : t -> int -> int -> bool
(** [add_edge b u v] returns [false] (and does nothing) when the edge already
    exists or [u = v]; [true] when it was added.
    @raise Invalid_argument on out-of-range endpoints. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val to_graph : t -> Graph.t
(** Freeze.  The builder may continue to be used afterwards. *)
