let distances g src =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    let du = dist.(u) in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- du + 1;
          Queue.add v queue
        end)
  done;
  dist

let distance g src dst =
  if src = dst then 0
  else begin
    let n = Graph.node_count g in
    let dist = Array.make n max_int in
    dist.(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    let result = ref max_int in
    (try
       while not (Queue.is_empty queue) do
         let u = Queue.take queue in
         let du = dist.(u) in
         Graph.iter_neighbors g u (fun v ->
             if dist.(v) = max_int then begin
               dist.(v) <- du + 1;
               if v = dst then begin
                 result := du + 1;
                 raise Exit
               end;
               Queue.add v queue
             end)
       done
     with Exit -> ());
    !result
  end

let distances_within g src radius =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  let acc = ref [ (src, 0) ] in
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    let du = dist.(u) in
    if du < radius then
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- du + 1;
            acc := (v, du + 1) :: !acc;
            Queue.add v queue
          end)
  done;
  List.rev !acc

let parents g src =
  (* Neighbor slices are sorted by id, so first-discovery order is
     deterministic: the lowest-id shortest-path tree. *)
  let n = Graph.node_count g in
  let parent = Array.make n (-1) in
  let seen = Prelude.Bitset.create n in
  Prelude.Bitset.add seen src;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Graph.iter_neighbors g u (fun v ->
        if not (Prelude.Bitset.mem seen v) then begin
          Prelude.Bitset.add seen v;
          parent.(v) <- u;
          Queue.add v queue
        end)
  done;
  parent

let path_to ~parents ~src v =
  if v = src then [ src ]
  else if parents.(v) = -1 then []
  else begin
    let rec climb v acc = if v = src then src :: acc else climb parents.(v) (v :: acc) in
    climb v []
  end

let eccentricity g src =
  let dist = distances g src in
  Array.fold_left (fun acc d -> if d <> max_int && d > acc then d else acc) 0 dist

let mean_pairwise_distance g ~samples ~rng =
  let n = Graph.node_count g in
  if n < 2 || samples <= 0 then 0.0
  else begin
    let acc = ref 0.0 and counted = ref 0 in
    for _ = 1 to samples do
      let src = Prelude.Prng.int rng n in
      let dst = Prelude.Prng.int rng n in
      if src <> dst then begin
        let d = distance g src dst in
        if d <> max_int then begin
          acc := !acc +. float_of_int d;
          incr counted
        end
      end
    done;
    if !counted = 0 then 0.0 else !acc /. float_of_int !counted
  end
