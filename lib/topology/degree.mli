(** Degree-distribution analysis.

    Checks that generated maps have the statistical regularities the paper's
    argument needs: a heavy-tailed (power-law) degree distribution and an
    abundance of degree-1 attachment routers. *)

val histogram : Graph.t -> Prelude.Histogram.t
(** Degree histogram over all nodes. *)

val power_law_alpha : Graph.t -> x_min:int -> float
(** Maximum-likelihood estimate of the power-law exponent (Clauset–Shalizi–
    Newman discrete approximation) over nodes with degree >= [x_min]:
    [alpha = 1 + n / sum (ln (d_i / (x_min - 0.5)))].
    @raise Invalid_argument when no node reaches [x_min] or [x_min < 1]. *)

val fraction_with_degree : Graph.t -> int -> float
(** Fraction of nodes with exactly the given degree. *)

val gini : Graph.t -> float
(** Gini coefficient of the degree sequence: 0 = perfectly homogeneous,
    -> 1 = concentrated on few hubs.  A scalar "heavy-tailedness" check used
    by tests to separate ER from BA/Magoni maps. *)

val median_degree : Graph.t -> int
val percentile_degree : Graph.t -> float -> int
(** [percentile_degree g p] is the degree at percentile [p] of the node
    degree sequence. *)
