type node = int

type t = {
  offsets : int array; (* length node_count + 1 *)
  targets : int array; (* length 2 * edge_count, sorted within each node slice *)
}

let node_count g = Array.length g.offsets - 1
let edge_count g = Array.length g.targets / 2

let check_node g v name =
  if v < 0 || v >= node_count g then invalid_arg ("Graph." ^ name ^ ": node out of range")

let degree g v =
  check_node g v "degree";
  g.offsets.(v + 1) - g.offsets.(v)

let neighbors g v =
  check_node g v "neighbors";
  Array.sub g.targets g.offsets.(v) (g.offsets.(v + 1) - g.offsets.(v))

let iter_neighbors g v f =
  check_node g v "iter_neighbors";
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.targets.(i)
  done

let fold_neighbors g v f init =
  check_node g v "fold_neighbors";
  let acc = ref init in
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    acc := f !acc g.targets.(i)
  done;
  !acc

let mem_edge g u v =
  check_node g u "mem_edge";
  check_node g v "mem_edge";
  (* Binary search within u's sorted neighbor slice. *)
  let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.targets.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let edges g =
  let acc = ref [] in
  for u = node_count g - 1 downto 0 do
    for i = g.offsets.(u + 1) - 1 downto g.offsets.(u) do
      let v = g.targets.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let max_degree g =
  let best = ref 0 in
  for v = 0 to node_count g - 1 do
    best := max !best (g.offsets.(v + 1) - g.offsets.(v))
  done;
  !best

let mean_degree g =
  if node_count g = 0 then 0.0
  else 2.0 *. float_of_int (edge_count g) /. float_of_int (node_count g)

let of_edges ~node_count:n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let targets = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      targets.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      targets.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edge_list;
  (* Sort each slice and reject duplicates. *)
  for v = 0 to n - 1 do
    let slice = Array.sub targets offsets.(v) deg.(v) in
    Array.sort compare slice;
    for i = 1 to deg.(v) - 1 do
      if slice.(i) = slice.(i - 1) then invalid_arg "Graph.of_edges: duplicate edge"
    done;
    Array.blit slice 0 targets offsets.(v) deg.(v)
  done;
  { offsets; targets }

let is_connected g =
  let n = node_count g in
  if n <= 1 then true
  else begin
    let seen = Prelude.Bitset.create n in
    let queue = Queue.create () in
    Queue.add 0 queue;
    Prelude.Bitset.add seen 0;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      iter_neighbors g u (fun v ->
          if not (Prelude.Bitset.mem seen v) then begin
            Prelude.Bitset.add seen v;
            incr visited;
            Queue.add v queue
          end)
    done;
    !visited = n
  end

let nodes_matching g f =
  let acc = ref [] in
  for v = node_count g - 1 downto 0 do
    if f v (g.offsets.(v + 1) - g.offsets.(v)) then acc := v :: !acc
  done;
  !acc

let nodes_with_degree g d = nodes_matching g (fun _ deg -> deg = d)

let pp ppf g =
  Format.fprintf ppf "graph: %d nodes, %d edges, mean degree %.2f, max degree %d"
    (node_count g) (edge_count g) (mean_degree g) (max_degree g)
