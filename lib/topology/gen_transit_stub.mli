(** Hierarchical transit–stub topology (GT-ITM style).

    Transit domains form a meshed backbone; each transit router sponsors a
    few stub domains whose routers only reach the rest of the network through
    their transit attachment.  Gives explicit two-level hierarchy, used to
    test that the landmark scheme survives maps whose "core" is structural
    rather than degree-emergent. *)

type params = {
  transit_domains : int;
  routers_per_transit : int;
  stubs_per_transit_router : int;
  routers_per_stub : int;
  intra_edge_prob : float;  (** Extra random meshing inside each domain. *)
}

val default_params : params
(** 2 transit domains x 4 routers, 2 stubs per transit router, 6 routers per
    stub, 0.4 intra-domain meshing: ~120 routers. *)

val generate : params -> seed:int -> Graph.t
(** @raise Invalid_argument on non-positive counts or a probability outside
    [0, 1]. *)
