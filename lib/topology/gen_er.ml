let max_edges nodes = nodes * (nodes - 1) / 2

let fill_random b rng ~edges =
  let n = Builder.node_count b in
  while Builder.edge_count b < edges do
    let u = Prelude.Prng.int rng n in
    let v = Prelude.Prng.int rng n in
    ignore (Builder.add_edge b u v)
  done

let generate ~nodes ~edges ~seed =
  if nodes < 0 then invalid_arg "Gen_er.generate: negative node count";
  if edges < 0 || edges > max_edges nodes then invalid_arg "Gen_er.generate: edge count out of range";
  let rng = Prelude.Prng.create seed in
  let b = Builder.create nodes in
  fill_random b rng ~edges;
  Builder.to_graph b

let generate_connected ~nodes ~edges ~seed =
  if nodes < 1 then invalid_arg "Gen_er.generate_connected: need at least one node";
  if edges < nodes - 1 || edges > max_edges nodes then
    invalid_arg "Gen_er.generate_connected: edge count out of range";
  let rng = Prelude.Prng.create seed in
  let b = Builder.create nodes in
  (* Random spanning tree: attach each node (in random order) to a uniformly
     chosen earlier node, which is the standard random-recursive-tree
     construction. *)
  let order = Array.init nodes (fun i -> i) in
  Prelude.Prng.shuffle_in_place rng order;
  for i = 1 to nodes - 1 do
    let anchor = order.(Prelude.Prng.int rng i) in
    ignore (Builder.add_edge b order.(i) anchor)
  done;
  fill_random b rng ~edges;
  Builder.to_graph b
