(** Barabási–Albert preferential attachment.

    Produces the heavy-tailed degree distribution (power-law exponent ~3)
    that the paper's centrality argument rests on.  Used directly and as the
    core-construction step of {!Gen_magoni}. *)

val generate : nodes:int -> edges_per_node:int -> seed:int -> Graph.t
(** [generate ~nodes ~edges_per_node:m ~seed] starts from a clique of [m + 1]
    nodes and attaches each subsequent node with [m] edges chosen by linear
    preferential attachment (implemented with the repeated-endpoints trick so
    each step is O(m)).  The result is connected.
    @raise Invalid_argument if [m < 1] or [nodes <= m]. *)

val into_builder : Builder.t -> first_node:int -> count:int -> edges_per_node:int -> rng:Prelude.Prng.t -> unit
(** Grow an existing builder: nodes [first_node .. first_node + count - 1]
    join by preferential attachment over the endpoints already recorded in
    the builder's edge multiset restricted to that growth process.  The
    builder must already contain at least one edge among nodes below
    [first_node]. *)
