(** Streaming quantile estimation (the P² algorithm, Jain & Chlamtac 1985).

    Long simulations want tail latencies (p95/p99) without retaining every
    sample.  P² tracks five markers whose positions are nudged by a
    piecewise-parabolic update; memory is O(1), the estimate converges to
    the true quantile for stationary streams.  For fewer than five
    observations the exact value is returned. *)

type t

val create : q:float -> t
(** Track the [q]-quantile, [q] strictly between 0 and 1.
    @raise Invalid_argument otherwise. *)

val q : t -> float
val count : t -> int
val add : t -> float -> unit

val clear : t -> unit
(** Reset to the freshly-created state in place (same tracked quantile). *)

val estimate : t -> float
(** Current estimate; [nan] before the first observation.  Exact until five
    observations have arrived. *)
