(** Terminal line plots.

    The paper's measured result is a single plot (quality ratios against
    number of peers); rendering our reproduction as ASCII art lets the bench
    harness show the *shape* — flat versus noisy series — directly in the
    transcript. *)

type series = { label : string; points : (float * float) list }

val render : ?width:int -> ?height:int -> ?y_min:float -> ?y_max:float -> series list -> string
(** [render series] draws all series on shared axes inside a [width] x
    [height] character grid (defaults 64 x 16).  Each series is drawn with its
    own glyph taken from ["*+ox#@"] in order, and a legend maps glyphs back to
    labels.  The y-range defaults to the data extent padded by 5%.  Returns
    [""] when every series is empty. *)
