(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from a {!t} so that a
    whole experiment is reproducible from a single integer seed.  The
    implementation is xoshiro256** seeded through splitmix64, which is the
    combination recommended by Blackman and Vigna; it passes BigCrush and is
    much better distributed than [Stdlib.Random] while remaining dependency
    free.

    Generators are mutable.  {!split} derives an independent child generator,
    which lets concurrent protocol components consume randomness without
    perturbing each other's streams. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val copy : t -> t
(** [copy g] is a generator with the same state as [g]; the two evolve
    independently afterwards. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range g ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** [unit_float g] is uniform in [\[0, 1)]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val exponential : t -> mean:float -> float
(** [exponential g ~mean] draws from Exp(1/mean).  @raise Invalid_argument if
    [mean <= 0]. *)

val exp_draw : t -> rate:float -> float
(** [exp_draw g ~rate] is the rate-parameterized exponential draw (mean
    [1 /. rate]) — the inter-arrival gap of a homogeneous Poisson process
    with intensity [rate].  @raise Invalid_argument if [rate <= 0]. *)

val next_arrival : t -> now:float -> rate_max:float -> rate_at:(float -> float) -> float
(** Lewis–Shedler thinning: the next event time strictly after [now] of an
    inhomogeneous Poisson process with intensity [rate_at t] (events per
    unit of the caller's clock), bounded above by [rate_max].  Candidate
    points are drawn at the envelope rate [rate_max] and accepted with
    probability [rate_at t /. rate_max]; [rate_at] values are clamped into
    [\[0, rate_max\]].  The caller must ensure the intensity does not stay
    at zero forever, or the draw never terminates.
    @raise Invalid_argument if [rate_max <= 0]. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** [pareto g ~alpha ~x_min] draws from a Pareto distribution with shape
    [alpha] and scale [x_min]; used for heavy-tailed session times and
    degrees. *)

val normal : t -> mu:float -> sigma:float -> float
(** [normal g ~mu ~sigma] draws from N(mu, sigma^2) by Box–Muller. *)

val geometric : t -> p:float -> int
(** [geometric g ~p] is the number of failures before the first success of a
    Bernoulli(p) sequence; [p] must be in (0, 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf g ~n ~s] draws a rank in [\[1, n\]] with probability proportional to
    [1 / rank^s].  Uses rejection-inversion so it stays fast for large [n]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** [choose g a] is a uniformly random element.  @raise Invalid_argument on an
    empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement g ~k ~n] is [k] distinct indices drawn
    uniformly from [\[0, n)], in random order.  @raise Invalid_argument if
    [k > n] or [k < 0]. *)
