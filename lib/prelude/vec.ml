type t = { mutable data : int array; mutable size : int }

let create ?(capacity = 8) () = { data = Array.make (max capacity 1) 0; size = 0 }
let length v = v.size

let check v i name = if i < 0 || i >= v.size then invalid_arg ("Vec." ^ name ^ ": index out of bounds")

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let push v x =
  if v.size = Array.length v.data then begin
    let data = Array.make (2 * v.size) 0 in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then None
  else begin
    v.size <- v.size - 1;
    Some v.data.(v.size)
  end

let clear v = v.size <- 0
let to_array v = Array.sub v.data 0 v.size
let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); size = Array.length a }

let iter v f =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri v f =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let exists v p =
  let rec loop i = i < v.size && (p v.data.(i) || loop (i + 1)) in
  loop 0

let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.size
