(** Mutable binary-heap priority queue with [float] priorities.

    Used both as the simulator event queue and inside Dijkstra.  Lower
    priority values pop first.  The heap stores arbitrary payloads and allows
    duplicate priorities; ties pop in unspecified order, so callers that need
    determinism must encode the tie-break into the priority or payload. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty queue.  [capacity] pre-sizes the backing array. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** [push q ~priority v] inserts [v]; O(log n). *)

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the minimum-priority entry; O(log n). *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument on an empty queue. *)

val peek : 'a t -> (float * 'a) option
(** [peek q] is the minimum entry without removing it; O(1). *)

val clear : 'a t -> unit

val iter_unordered : 'a t -> (float -> 'a -> unit) -> unit
(** Visit every queued entry in arbitrary (heap) order. *)
