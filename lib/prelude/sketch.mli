(** Mergeable quantile sketch with a bounded relative error.

    A log-bucketed (DDSketch-style) sketch: values land in geometric
    buckets sized so any reported quantile is within a relative error of
    [alpha] of the true order statistic — [|estimate - exact| <= alpha *
    exact] — regardless of how many samples were added.  Two sketches
    built with the same [alpha] merge exactly (bucket counts add), so
    per-shard, per-replica and per-backend latency streams roll up into
    fleet-wide tails that carry the {e same} error bound as each input.

    This is the property the P^2 estimator ({!Quantile}) lacks: P^2 keeps
    five marker points and cannot be combined after the fact.
    {!Simkit.Trace} therefore runs both — P^2 for cheap live reads, a
    sketch for anything that must merge. *)

type t

val default_alpha : float
(** 0.01 — a 1% relative-error bound, the default for {!create} and the
    bound documented for every merged trace quantile. *)

val create : ?alpha:float -> unit -> t
(** [alpha] is the relative-error bound; defaults to {!default_alpha}.
    @raise Invalid_argument when [alpha] is outside (0, 1). *)

val add : t -> float -> unit
(** Record one value.  NaN, negatives and values below 1e-9 share an exact
    zero bucket (mirroring {!Histogram.log2_bucket}'s treatment). *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: an estimate within relative
    error [alpha t] of the true q-quantile, clamped to the observed
    min/max.  NaN on an empty sketch.
    @raise Invalid_argument on [q] outside [\[0, 1\]]. *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s counts into [into]; [src] is unchanged.  The merged
    sketch summarises the concatenated streams with the same error bound.
    @raise Invalid_argument when the two sketches' [alpha] differ. *)

val clear : t -> unit
(** Drop all counts in place (handles stay valid). *)

val alpha : t -> float
(** The relative-error bound this sketch was built with. *)

val count : t -> int
val is_empty : t -> bool

val buckets_used : t -> int
(** Occupied buckets — the sketch's memory footprint in cells. *)
