(** Binary encoding primitives for wire messages.

    Compact, endian-explicit and allocation-light: unsigned LEB128 varints
    for integers (path distances and node ids are small), length-prefixed
    byte strings.  The reader never reads past the buffer; all failures are
    reported as [Error], not exceptions, because the input is untrusted
    network data. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val contents : t -> string
  val length : t -> int
  val u8 : t -> int -> unit
  (** @raise Invalid_argument outside [0, 255]. *)

  val varint : t -> int -> unit
  (** Unsigned LEB128; @raise Invalid_argument on negative input. *)

  val bool : t -> bool -> unit
  val bytes : t -> string -> unit
  (** Varint length prefix followed by the raw bytes. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Varint count followed by each element (use a closure over the
      writer). *)
end

module type SINK = sig
  type t

  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  val bool : t -> bool -> unit
  val bytes : t -> string -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
end
(** The emitting surface shared by {!Writer} and {!Sizer}.  Encoders written
    against [SINK] can be instantiated once to produce bytes and once to
    measure them without allocating a buffer. *)

module Sizer : sig
  type t

  val create : unit -> t
  val size : t -> int
  (** Bytes the same sequence of calls would have appended to a {!Writer}. *)

  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  val bool : t -> bool -> unit
  val bytes : t -> string -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
end

module Reader : sig
  type t

  type error = Truncated | Malformed of string

  val of_string : string -> t
  val is_exhausted : t -> bool
  val u8 : t -> (int, error) result
  val varint : t -> (int, error) result
  val bool : t -> (bool, error) result
  val bytes : t -> (string, error) result
  val list : t -> (t -> ('a, error) result) -> ('a list, error) result
  val error_to_string : error -> string
end
