type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 is used only to expand the user seed into the 256-bit xoshiro
   state, as recommended by Vigna: it guarantees the state is never all
   zeroes and decorrelates consecutive integer seeds. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let state = ref (bits64 g) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

(* Non-negative 62-bit integer, cheap and unbiased enough as a base for
   rejection sampling. *)
let bits62 g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_range = 0x3FFF_FFFF_FFFF_FFFF in
  let limit = mask_range - (mask_range mod bound) in
  let rec loop () =
    let v = bits62 g in
    if v >= limit then loop () else v mod bound
  in
  loop ()

let int_in_range g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits scaled into [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int v *. 0x1p-53

let float g bound = unit_float g *. bound
let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. unit_float g in
  -.mean *. log u

let exp_draw g ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exp_draw: rate must be positive";
  exponential g ~mean:(1.0 /. rate)

(* Lewis-Shedler thinning: draw candidates at the envelope rate and accept
   with probability rate_at t / rate_max.  The accepted point is a draw
   from the inhomogeneous process as long as rate_at never exceeds the
   envelope, which the clamp enforces. *)
let next_arrival g ~now ~rate_max ~rate_at =
  if rate_max <= 0.0 then invalid_arg "Prng.next_arrival: rate_max must be positive";
  let rec loop t =
    let t = t +. exp_draw g ~rate:rate_max in
    let r = Float.min rate_max (Float.max 0.0 (rate_at t)) in
    if unit_float g *. rate_max < r then t else loop t
  in
  loop now

let pareto g ~alpha ~x_min =
  if alpha <= 0.0 || x_min <= 0.0 then invalid_arg "Prng.pareto: parameters must be positive";
  let u = 1.0 -. unit_float g in
  x_min /. (u ** (1.0 /. alpha))

let normal g ~mu ~sigma =
  let u1 = 1.0 -. unit_float g in
  let u2 = unit_float g in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let geometric g ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. unit_float g in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

(* Rejection-inversion sampling for the Zipf distribution, after Hormann and
   Derflinger (1996).  Constant expected cost per draw, independent of [n]. *)
let zipf g ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if s <= 0.0 then invalid_arg "Prng.zipf: s must be positive";
  if n = 1 then 1
  else if abs_float (s -. 1.0) < 1e-12 then begin
    (* Harmonic case: direct inversion on the harmonic CDF. *)
    let h_n =
      let acc = ref 0.0 in
      for k = 1 to n do
        acc := !acc +. (1.0 /. float_of_int k)
      done;
      !acc
    in
    let target = unit_float g *. h_n in
    let rec walk k acc =
      let acc = acc +. (1.0 /. float_of_int k) in
      if acc >= target || k = n then k else walk (k + 1) acc
    in
    walk 1 0.0
  end
  else begin
    let one_minus_s = 1.0 -. s in
    let h x = (x ** one_minus_s) /. one_minus_s in
    let h_inv x = (one_minus_s *. x) ** (1.0 /. one_minus_s) in
    let h_x1 = h 1.5 -. (1.0 ** -.s) in
    let h_n = h (float_of_int n +. 0.5) in
    let rec loop () =
      let u = h_x1 +. (unit_float g *. (h_n -. h_x1)) in
      let x = h_inv u in
      let k = int_of_float (Float.round x) in
      let k = if k < 1 then 1 else if k > n then n else k in
      if u >= h (float_of_int k +. 0.5) -. (float_of_int k ** -.s) then k else loop ()
    in
    loop ()
  end

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g ~k ~n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement: need 0 <= k <= n";
  if 3 * k >= n then begin
    (* Dense regime: partial Fisher-Yates over the full index range. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in_range g ~lo:i ~hi:(n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse regime: rejection with a hash set, O(k) expected. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int g n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
