type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let ncols = List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (cell row i))) (String.length (cell header i)) rows)
  in
  let align_of i =
    match List.nth_opt align i with
    | Some a -> a
    | None -> if i = 0 then Left else Right
  in
  let render_row row =
    String.concat "  " (List.init ncols (fun i -> pad (align_of i) widths.(i) (cell row i)))
  in
  let rule = String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-')) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let csv_field s =
  let needs_quoting = String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s in
  if needs_quoting then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv ~header rows =
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let csv_sink = ref None
let csv_sequence = ref 0

let set_csv_sink dir =
  csv_sink := dir;
  csv_sequence := 0;
  match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ()

let slug_of header =
  let raw = String.concat "-" (List.filteri (fun i _ -> i < 3) header) in
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> Char.lowercase_ascii c
      | _ -> '_')
    raw

let capture_csv ~header rows =
  match !csv_sink with
  | None -> ()
  | Some dir ->
      incr csv_sequence;
      let path = Filename.concat dir (Printf.sprintf "%03d_%s.csv" !csv_sequence (slug_of header)) in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv ~header rows))

let print ?align ~header rows =
  print_string (render ?align ~header rows);
  capture_csv ~header rows

let float_cell ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v
