(** Growable array of unboxed [int]s.

    The topology builders accumulate edge lists of unknown length; [Vec]
    avoids the boxing cost of [int list] and the repeated copying of
    [Array.append]. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument on out-of-bounds access. *)

val push : t -> int -> unit
val pop : t -> int option
val clear : t -> unit
val to_array : t -> int array
val of_array : int array -> t
val iter : t -> (int -> unit) -> unit
val iteri : t -> (int -> int -> unit) -> unit
val exists : t -> (int -> bool) -> bool
val sort : t -> unit
(** Ascending in-place sort of the live prefix. *)
