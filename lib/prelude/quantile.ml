type t = {
  q : float;
  (* First five observations are buffered; the marker machinery starts
     after that. *)
  mutable warmup : float list;
  mutable n : int;
  heights : float array;  (* marker heights, ascending *)
  positions : float array;  (* actual marker positions (1-based) *)
  desired : float array;  (* desired marker positions *)
  increments : float array;
}

let create ~q =
  if q <= 0.0 || q >= 1.0 then invalid_arg "Quantile.create: q must be in (0, 1)";
  {
    q;
    warmup = [];
    n = 0;
    heights = Array.make 5 0.0;
    positions = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
    desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
    increments = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
  }

let q t = t.q
let count t = t.n

let clear t =
  t.warmup <- [];
  t.n <- 0;
  Array.fill t.heights 0 5 0.0;
  Array.iteri (fun i _ -> t.positions.(i) <- float_of_int (i + 1)) t.positions;
  let q = t.q in
  t.desired.(0) <- 1.0;
  t.desired.(1) <- 1.0 +. (2.0 *. q);
  t.desired.(2) <- 1.0 +. (4.0 *. q);
  t.desired.(3) <- 3.0 +. (2.0 *. q);
  t.desired.(4) <- 5.0

(* Piecewise-parabolic (P²) height update for marker i moved by d (+-1). *)
let parabolic t i d =
  let h = t.heights and pos = t.positions in
  h.(i)
  +. d
     /. (pos.(i + 1) -. pos.(i - 1))
     *. (((pos.(i) -. pos.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (pos.(i + 1) -. pos.(i)))
        +. ((pos.(i + 1) -. pos.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (pos.(i) -. pos.(i - 1))))

let linear t i d =
  let h = t.heights and pos = t.positions in
  h.(i) +. (d *. (h.(i + int_of_float d) -. h.(i)) /. (pos.(i + int_of_float d) -. pos.(i)))

let add t x =
  t.n <- t.n + 1;
  if t.n <= 5 then begin
    t.warmup <- x :: t.warmup;
    if t.n = 5 then begin
      let sorted = List.sort compare t.warmup in
      List.iteri (fun i v -> t.heights.(i) <- v) sorted
    end
  end
  else begin
    (* Find the cell and update extreme heights. *)
    let k =
      if x < t.heights.(0) then begin
        t.heights.(0) <- x;
        0
      end
      else if x >= t.heights.(4) then begin
        t.heights.(4) <- x;
        3
      end
      else begin
        let rec cell i = if x < t.heights.(i + 1) then i else cell (i + 1) in
        cell 0
      end
    in
    for i = k + 1 to 4 do
      t.positions.(i) <- t.positions.(i) +. 1.0
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust the three interior markers. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. t.positions.(i) in
      if
        (d >= 1.0 && t.positions.(i + 1) -. t.positions.(i) > 1.0)
        || (d <= -1.0 && t.positions.(i - 1) -. t.positions.(i) < -1.0)
      then begin
        let d = if d >= 0.0 then 1.0 else -1.0 in
        let candidate = parabolic t i d in
        let candidate =
          if t.heights.(i - 1) < candidate && candidate < t.heights.(i + 1) then candidate
          else linear t i d
        in
        t.heights.(i) <- candidate;
        t.positions.(i) <- t.positions.(i) +. d
      end
    done
  end

let estimate t =
  if t.n = 0 then nan
  else if t.n <= 5 then begin
    let sorted = List.sort compare t.warmup in
    let arr = Array.of_list sorted in
    let rank = t.q *. float_of_int (Array.length arr - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end
  else t.heights.(2)
