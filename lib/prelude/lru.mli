(** Bounded LRU cache.

    The route oracle materializes one parent array per destination; on a
    100k-router map with many destinations that is unbounded memory.  An
    LRU bound keeps the hot sink trees (landmarks, popular peers) and
    recomputes cold ones.  O(1) find/add/evict via a hash table over an
    intrusive doubly-linked recency list. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not refresh recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces, becoming most recent; evicts the least recent
    entry when over capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Idempotent. *)

val clear : ('k, 'v) t -> unit

val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a
(** Most recent first. *)

val evictions : ('k, 'v) t -> int
(** Entries evicted by capacity pressure since creation. *)
