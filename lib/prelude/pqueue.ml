type 'a entry = { prio : float; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable size : int }

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity { prio = 0.0; value = Obj.magic 0 }; size = 0 }

let length q = q.size
let is_empty q = q.size = 0

let grow q =
  let data = Array.make (2 * Array.length q.data) q.data.(0) in
  Array.blit q.data 0 data 0 q.size;
  q.data <- data

let push q ~priority v =
  if q.size = Array.length q.data then begin
    if q.size = 0 then q.data <- Array.make 16 { prio = priority; value = v } else grow q
  end;
  let i = ref q.size in
  q.size <- q.size + 1;
  q.data.(!i) <- { prio = priority; value = v };
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if q.data.(parent).prio > q.data.(!i).prio then begin
      let tmp = q.data.(parent) in
      q.data.(parent) <- q.data.(!i);
      q.data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down q =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < q.size && q.data.(l).prio < q.data.(!smallest).prio then smallest := l;
    if r < q.size && q.data.(r).prio < q.data.(!smallest).prio then smallest := r;
    if !smallest <> !i then begin
      let tmp = q.data.(!smallest) in
      q.data.(!smallest) <- q.data.(!i);
      q.data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q
    end;
    Some (top.prio, top.value)
  end

let pop_exn q =
  match pop q with
  | Some r -> r
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)
let clear q = q.size <- 0

let iter_unordered q f =
  for i = 0 to q.size - 1 do
    f q.data.(i).prio q.data.(i).value
  done
