module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let contents = Buffer.contents
  let length = Buffer.length

  let u8 t v =
    if v < 0 || v > 255 then invalid_arg "Codec.Writer.u8: outside [0, 255]";
    Buffer.add_char t (Char.chr v)

  let varint t v =
    if v < 0 then invalid_arg "Codec.Writer.varint: negative";
    let rec emit v =
      if v < 0x80 then Buffer.add_char t (Char.chr v)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (v land 0x7F)));
        emit (v lsr 7)
      end
    in
    emit v

  let bool t b = u8 t (if b then 1 else 0)

  let bytes t s =
    varint t (String.length s);
    Buffer.add_string t s

  let list t encode items =
    varint t (List.length items);
    List.iter encode items
end

(* Shared emitting surface of [Writer] and [Sizer], so an encoder can be
   written once and instantiated either to produce bytes or to count them. *)
module type SINK = sig
  type t

  val u8 : t -> int -> unit
  val varint : t -> int -> unit
  val bool : t -> bool -> unit
  val bytes : t -> string -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
end

module Sizer = struct
  type t = { mutable count : int }

  let create () = { count = 0 }
  let size t = t.count

  let u8 t v =
    if v < 0 || v > 255 then invalid_arg "Codec.Sizer.u8: outside [0, 255]";
    t.count <- t.count + 1

  let varint_size v =
    if v < 0 then invalid_arg "Codec.Sizer.varint: negative";
    let rec len v acc = if v < 0x80 then acc else len (v lsr 7) (acc + 1) in
    len v 1

  let varint t v = t.count <- t.count + varint_size v
  let bool t _ = t.count <- t.count + 1
  let bytes t s = t.count <- t.count + varint_size (String.length s) + String.length s

  let list t encode items =
    varint t (List.length items);
    List.iter encode items
end

module Reader = struct
  type t = { data : string; mutable pos : int }
  type error = Truncated | Malformed of string

  let of_string data = { data; pos = 0 }
  let is_exhausted t = t.pos >= String.length t.data

  let ( let* ) r f = Result.bind r f

  let u8 t =
    if t.pos >= String.length t.data then Error Truncated
    else begin
      let v = Char.code t.data.[t.pos] in
      t.pos <- t.pos + 1;
      Ok v
    end

  let varint t =
    let rec read shift acc =
      if shift > 56 then Error (Malformed "varint too long")
      else
        let* b = u8 t in
        (* At shift 56 only 6 more bits fit in a 63-bit OCaml int. *)
        if shift = 56 && b land 0x7F > 0x3F then Error (Malformed "varint overflows")
        else begin
          let acc = acc lor ((b land 0x7F) lsl shift) in
          if b land 0x80 = 0 then Ok acc else read (shift + 7) acc
        end
    in
    read 0 0

  let bool t =
    let* v = u8 t in
    match v with
    | 0 -> Ok false
    | 1 -> Ok true
    | other -> Error (Malformed (Printf.sprintf "bool byte %d" other))

  let bytes t =
    let* len = varint t in
    if t.pos + len > String.length t.data then Error Truncated
    else begin
      let s = String.sub t.data t.pos len in
      t.pos <- t.pos + len;
      Ok s
    end

  let list t decode =
    let* count = varint t in
    if count > String.length t.data - t.pos + 1 then
      (* Every element takes at least one byte; reject absurd counts before
         allocating. *)
      Error (Malformed "list count exceeds remaining input")
    else begin
      let rec loop n acc =
        if n = 0 then Ok (List.rev acc)
        else
          let* x = decode t in
          loop (n - 1) (x :: acc)
      in
      loop count []
    end

  let error_to_string = function
    | Truncated -> "truncated input"
    | Malformed reason -> "malformed input: " ^ reason
end
