(** Persistent pool of worker domains for scatter-style parallel jobs.

    Built for the sharded registry's per-shard query scatter: the shards are
    disjoint data structures, so tasks share no mutable state and need no
    synchronization beyond the pool's own job handoff.  Callers must uphold
    that property — a task must not touch state another concurrent task
    writes (distinct slots of a results array are fine). *)

type t

val create : ?domains:int -> unit -> t
(** Spawn a pool with [domains] total parallelism (the calling domain
    participates in every job, so [domains - 1] workers are spawned).
    Defaults to [Domain.recommended_domain_count ()]; values are clamped to
    [\[1, 64\]].  [domains = 1] spawns nothing and runs jobs sequentially. *)

val size : t -> int
(** Total parallelism: spawned workers plus the calling domain. *)

val run : t -> int -> (int -> unit) -> unit
(** [run t n f] evaluates [f 0 .. f (n-1)], claiming tasks dynamically
    across the pool, and returns when all have finished.  If any task
    raises, the first exception observed is re-raised in the caller after
    the job drains.  Reentrant calls (from inside a task) and [n <= 1] run
    sequentially in the caller.  Only one domain may drive [run] at a
    time. *)

type utilization = {
  domains : int;  (** total parallelism ({!size}) *)
  wall_ns : float;  (** wall time since creation or {!reset_utilization} *)
  busy_ns : float;  (** nanoseconds spent inside task bodies, all domains *)
  idle_ns : float;  (** [domains * wall_ns - busy_ns], clamped at 0 *)
  jobs : int;  (** {!run} calls that dispatched work *)
  tasks : int;  (** individual task bodies executed *)
}

val utilization : t -> utilization
(** Busy/idle accounting over the current window.  [busy_ns + idle_ns]
    equals [domains * wall_ns] (up to the clamp), so the two shares always
    account for all worker time; a pool that never ran a job reports pure
    idle.  Sequential fallbacks (reentrant or single-task {!run} calls)
    count as busy time too. *)

val reset_utilization : t -> unit
(** Start a fresh accounting window (counters to zero, wall origin to
    now).  Useful around a measured phase on the long-lived {!shared}
    pool. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent. *)

val shared : unit -> t
(** The process-wide pool, sized to the machine, created on first use and
    shut down via [at_exit]. *)
