type t = { mutable counts : int array; mutable total : int; mutable max_seen : int }

let create () = { counts = Array.make 16 0; total = 0; max_seen = -1 }

let ensure h v =
  if v >= Array.length h.counts then begin
    let counts = Array.make (max (2 * Array.length h.counts) (v + 1)) 0 in
    Array.blit h.counts 0 counts 0 (Array.length h.counts);
    h.counts <- counts
  end

let add_many h v k =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  if k < 0 then invalid_arg "Histogram.add_many: negative count";
  ensure h v;
  h.counts.(v) <- h.counts.(v) + k;
  h.total <- h.total + k;
  if k > 0 && v > h.max_seen then h.max_seen <- v

let add h v = add_many h v 1

(* Power-of-two bucketing shared by every latency histogram in the tree:
   bucket 0 holds everything <= 1 (and NaN), bucket b > 0 covers
   (2^(b-1), 2^b].  Clamped at 2^62 so float_of_int stays exact. *)
let log2_bucket v =
  (* ceil, not 1 + floor: an exact power of two is the closed upper edge
     of its own bucket (2.0 belongs to (1, 2], not (2, 4]). *)
  if Float.is_nan v || v <= 1.0 then 0
  else int_of_float (Float.ceil (Float.log2 (Float.min v 0x1p62)))

let add_log2 h v = add h (log2_bucket v)

let merge_into ~into src =
  if src.max_seen >= 0 then begin
    ensure into src.max_seen;
    for v = 0 to src.max_seen do
      if src.counts.(v) > 0 then into.counts.(v) <- into.counts.(v) + src.counts.(v)
    done;
    into.total <- into.total + src.total;
    if src.max_seen > into.max_seen then into.max_seen <- src.max_seen
  end

let clear h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.total <- 0;
  h.max_seen <- -1
let count h v = if v < 0 || v >= Array.length h.counts then 0 else h.counts.(v)
let total h = h.total
let max_observed h = h.max_seen

let mean h =
  if h.total = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for v = 0 to h.max_seen do
      acc := !acc +. (float_of_int v *. float_of_int h.counts.(v))
    done;
    !acc /. float_of_int h.total
  end

let fraction_at h v = if h.total = 0 then 0.0 else float_of_int (count h v) /. float_of_int h.total

let to_assoc h =
  let acc = ref [] in
  for v = h.max_seen downto 0 do
    if h.counts.(v) > 0 then acc := (v, h.counts.(v)) :: !acc
  done;
  !acc

let ccdf h =
  if h.total = 0 then []
  else begin
    (* P(X >= v) computed by a suffix sum over counts. *)
    let n = float_of_int h.total in
    let suffix = ref 0 in
    let acc = ref [] in
    for v = h.max_seen downto 0 do
      suffix := !suffix + h.counts.(v);
      if h.counts.(v) > 0 then acc := (v, float_of_int !suffix /. n) :: !acc
    done;
    !acc
  end
