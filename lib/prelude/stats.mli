(** Streaming and batch descriptive statistics.

    Experiments accumulate per-run measurements into an {!t} (Welford's
    online algorithm, numerically stable) and report mean, standard deviation
    and confidence intervals; batch helpers compute percentiles over stored
    samples. *)

type t
(** Online accumulator over a stream of floats. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 on an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val max_value : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val min_opt : t -> float option
(** Total variant of {!min_value}: [None] on an empty accumulator.  Metric
    exporters use this so a never-observed stream serializes as null rather
    than raising. *)

val max_opt : t -> float option
(** Total variant of {!max_value}: [None] on an empty accumulator. *)

val sum : t -> float

val clear : t -> unit
(** Zero the accumulator in place.  Handles previously given out keep
    working and observe the cleared state. *)

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean: [1.96 * stddev / sqrt count]; 0 when fewer than two samples. *)

val merge : t -> t -> t
(** [merge a b] summarises the concatenation of both streams. *)

val merge_into : into:t -> t -> unit
(** In-place {!merge}: fold [src]'s stream into [into]; [src] is
    unchanged.  Handles previously given out on [into] keep working and
    observe the merged state (the property {!Simkit.Trace.merge_into}
    relies on). *)

(** {1 Batch helpers} *)

val mean_of : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics.  The input is not modified.
    @raise Invalid_argument on an empty array or [p] outside the range. *)

val median : float array -> float
