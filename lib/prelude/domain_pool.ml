(* A small persistent pool of worker domains for scatter-style jobs.

   [run pool n f] evaluates [f 0 .. f (n-1)] with the calling domain
   participating alongside the workers, and returns only when every task has
   finished.  Tasks are claimed one at a time from a shared counter under the
   pool mutex, so uneven task costs balance automatically.

   Spawning a domain costs ~100us and OCaml 5 caps the useful domain count at
   the core count, so pools are created once and reused; workers sleep on a
   condition variable between jobs.  The pool is meant to be driven from one
   orchestrating domain: concurrent [run] calls from different domains are
   not supported, and a reentrant [run] from inside a task falls back to
   sequential execution (the [busy] flag). *)

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable run_fn : int -> unit;
  mutable ntasks : int;
  mutable next_task : int;
  mutable completed : int;
  mutable generation : int;
  mutable exn : (exn * Printexc.raw_backtrace) option;
  mutable stop : bool;
  mutable busy : bool;
  mutable domains : unit Domain.t array;
  (* Utilization accounting, all mutated under [mutex]: wall-clock origin
     of the current accounting window, nanoseconds spent inside task
     bodies (any domain), and job/task counts. *)
  mutable window_start : float;
  mutable busy_ns : float;
  mutable jobs : int;
  mutable tasks : int;
}

type utilization = {
  domains : int;
  wall_ns : float;
  busy_ns : float;
  idle_ns : float;
  jobs : int;
  tasks : int;
}

let now_ns () = Unix.gettimeofday () *. 1e9

let no_job (_ : int) = ()

(* Claim and run tasks of generation [gen] until none remain.  The mutex is
   held on entry and on exit; it is released around each task body. *)
let claim t gen =
  while t.generation = gen && t.next_task < t.ntasks do
    let i = t.next_task in
    t.next_task <- i + 1;
    let fn = t.run_fn in
    Mutex.unlock t.mutex;
    let started = now_ns () in
    let failure =
      try
        fn i;
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let elapsed = now_ns () -. started in
    Mutex.lock t.mutex;
    (match failure with
    | Some _ when t.exn = None -> t.exn <- failure
    | _ -> ());
    t.busy_ns <- t.busy_ns +. elapsed;
    t.tasks <- t.tasks + 1;
    t.completed <- t.completed + 1;
    if t.completed >= t.ntasks then Condition.broadcast t.work_done
  done

let worker t =
  Mutex.lock t.mutex;
  let last = ref 0 in
  while not t.stop do
    if t.generation > !last then begin
      let gen = t.generation in
      last := gen;
      claim t gen
    end
    else Condition.wait t.work_ready t.mutex
  done;
  Mutex.unlock t.mutex

let create ?(domains = Domain.recommended_domain_count ()) () =
  let domains = max 1 (min domains 64) in
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      run_fn = no_job;
      ntasks = 0;
      next_task = 0;
      completed = 0;
      generation = 0;
      exn = None;
      stop = false;
      busy = false;
      domains = [||];
      window_start = now_ns ();
      busy_ns = 0.0;
      jobs = 0;
      tasks = 0;
    }
  in
  (* The caller participates in every job, so [domains] total parallelism
     needs [domains - 1] spawned workers. *)
  t.domains <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size (t : t) = Array.length t.domains + 1

let run t n f =
  if n > 0 then
    if t.busy || n = 1 || Array.length t.domains = 0 then begin
      let started = now_ns () in
      for i = 0 to n - 1 do
        f i
      done;
      let elapsed = now_ns () -. started in
      Mutex.lock t.mutex;
      t.busy_ns <- t.busy_ns +. elapsed;
      t.tasks <- t.tasks + n;
      t.jobs <- t.jobs + 1;
      Mutex.unlock t.mutex
    end
    else begin
      Mutex.lock t.mutex;
      t.busy <- true;
      t.jobs <- t.jobs + 1;
      t.run_fn <- f;
      t.ntasks <- n;
      t.next_task <- 0;
      t.completed <- 0;
      t.exn <- None;
      t.generation <- t.generation + 1;
      let gen = t.generation in
      Condition.broadcast t.work_ready;
      claim t gen;
      while t.completed < n do
        Condition.wait t.work_done t.mutex
      done;
      t.run_fn <- no_job;
      t.busy <- false;
      let failure = t.exn in
      t.exn <- None;
      Mutex.unlock t.mutex;
      match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

(* Capacity is [size t] domain-seconds per wall second: the caller is a
   full participant while a job runs, and idle the rest of the time just
   like a sleeping worker.  Defining idle as capacity minus busy makes
   busy + idle account for all worker time by construction, and makes a
   pool that never ran a job report pure idle. *)
let utilization t =
  Mutex.lock t.mutex;
  let wall = Float.max 0.0 (now_ns () -. t.window_start) in
  let capacity = float_of_int (Array.length t.domains + 1) *. wall in
  let busy = Float.min t.busy_ns capacity in
  let u =
    {
      domains = Array.length t.domains + 1;
      wall_ns = wall;
      busy_ns = busy;
      idle_ns = Float.max 0.0 (capacity -. busy);
      jobs = t.jobs;
      tasks = t.tasks;
    }
  in
  Mutex.unlock t.mutex;
  u

let reset_utilization t =
  Mutex.lock t.mutex;
  t.window_start <- now_ns ();
  t.busy_ns <- 0.0;
  t.jobs <- 0;
  t.tasks <- 0;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work_ready
  end;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* One process-wide pool sized to the machine, created on first use and
   joined at exit (OCaml 5 requires every domain joined before teardown). *)
let shared_instance = ref None

let shared () =
  match !shared_instance with
  | Some p -> p
  | None ->
      let p = create () in
      shared_instance := Some p;
      at_exit (fun () -> shutdown p);
      p
