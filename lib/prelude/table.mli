(** Plain-text table rendering for experiment reports.

    Benchmarks print the same rows the paper reports; this module aligns the
    columns so the output is readable in a terminal and diffs cleanly. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the header and rows out in aligned columns
    separated by two spaces, with a dashed rule under the header.  [align]
    gives per-column alignment (default: first column left, rest right);
    missing entries default to [Right].  Short rows are padded with empty
    cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string].  When a CSV sink is set, the same
    table is also appended there as a numbered [.csv] file. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting, default 3 decimals. *)

(** {1 CSV capture} *)

val to_csv : header:string list -> string list list -> string
(** RFC-4180-style CSV (quotes doubled, fields with commas/quotes/newlines
    quoted). *)

val set_csv_sink : string option -> unit
(** [set_csv_sink (Some dir)] makes every subsequent {!print} also write
    its table to [dir/NNN_slug.csv] (NNN = sequence number, slug from the
    first header cells).  [None] turns capture off.  The directory is
    created if missing. *)
