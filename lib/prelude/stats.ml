type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum_acc : float;
}

let create () = { n = 0; mean_acc = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; sum_acc = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.sum_acc <- t.sum_acc +. x

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean_acc
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let min_value t = if t.n = 0 then invalid_arg "Stats.min_value: empty" else t.min_v
let max_value t = if t.n = 0 then invalid_arg "Stats.max_value: empty" else t.max_v
let min_opt t = if t.n = 0 then None else Some t.min_v
let max_opt t = if t.n = 0 then None else Some t.max_v
let sum t = t.sum_acc

let clear t =
  t.n <- 0;
  t.mean_acc <- 0.0;
  t.m2 <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity;
  t.sum_acc <- 0.0

let ci95_halfwidth t = if t.n < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean_acc -. a.mean_acc in
    let mean_acc = a.mean_acc +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n) in
    {
      n;
      mean_acc;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      sum_acc = a.sum_acc +. b.sum_acc;
    }
  end

let merge_into ~into src =
  if src.n > 0 then begin
    if into.n = 0 then begin
      into.n <- src.n;
      into.mean_acc <- src.mean_acc;
      into.m2 <- src.m2;
      into.min_v <- src.min_v;
      into.max_v <- src.max_v;
      into.sum_acc <- src.sum_acc
    end
    else begin
      let n = into.n + src.n in
      let delta = src.mean_acc -. into.mean_acc in
      let mean_acc =
        into.mean_acc +. (delta *. float_of_int src.n /. float_of_int n)
      in
      let m2 =
        into.m2 +. src.m2
        +. (delta *. delta *. float_of_int into.n *. float_of_int src.n
           /. float_of_int n)
      in
      into.n <- n;
      into.mean_acc <- mean_acc;
      into.m2 <- m2;
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v;
      into.sum_acc <- into.sum_acc +. src.sum_acc
    end
  end

let mean_of xs =
  if Array.length xs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0
