(* Mergeable quantile sketch with a relative-error guarantee.

   Log-bucketed in the DDSketch style: bucket [i] covers the value range
   (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha), and a bucket
   reports the value 2*gamma^i/(gamma+1) — the point whose worst-case
   relative error against anything in the bucket is exactly alpha.  Unlike
   the P^2 estimator ({!Quantile}), two sketches with the same alpha merge
   by adding bucket counts, which is what lets per-shard and per-replica
   latency streams roll up into one fleet-wide tail.

   Buckets live in a hashtable keyed by index: latency distributions touch
   a few hundred buckets at most (alpha = 0.01 spans 1ns..1h in ~2100
   buckets, of which a real stream populates a narrow band), so sparse
   storage beats a dense array over the full index range. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  buckets : (int, int) Hashtbl.t;
  mutable zero : int;  (* NaN and values below the trackable floor *)
  mutable total : int;
  mutable min_v : float;
  mutable max_v : float;
}

let default_alpha = 0.01

(* Below this, log-bucketing explodes into deeply negative indexes for no
   analytical gain; such values (and NaN, and negatives) share one exact
   zero bucket. *)
let min_trackable = 1e-9

let create ?(alpha = default_alpha) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Sketch.create: alpha outside (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    buckets = Hashtbl.create 64;
    zero = 0;
    total = 0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let alpha t = t.alpha
let count t = t.total
let is_empty t = t.total = 0

let bucket_of t v = int_of_float (Float.ceil (log v /. t.log_gamma))
let value_of t i = 2.0 *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.0)

let add t v =
  let v = if Float.is_nan v then 0.0 else v in
  if v <= min_trackable then t.zero <- t.zero + 1
  else begin
    let i = bucket_of t v in
    let c = try Hashtbl.find t.buckets i with Not_found -> 0 in
    Hashtbl.replace t.buckets i (c + 1)
  end;
  t.total <- t.total + 1;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let clear t =
  Hashtbl.reset t.buckets;
  t.zero <- 0;
  t.total <- 0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let merge_into ~into src =
  if into.alpha <> src.alpha then
    invalid_arg "Sketch.merge_into: relative-error bounds differ";
  Hashtbl.iter
    (fun i c ->
      let prev = try Hashtbl.find into.buckets i with Not_found -> 0 in
      Hashtbl.replace into.buckets i (prev + c))
    src.buckets;
  into.zero <- into.zero + src.zero;
  into.total <- into.total + src.total;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Sketch.quantile: q outside [0, 1]";
  if t.total = 0 then nan
  else begin
    (* 0-based rank of the order statistic we are after. *)
    let rank = int_of_float (q *. float_of_int (t.total - 1)) in
    if rank < t.zero then Float.max 0.0 t.min_v
    else begin
      let keys =
        Hashtbl.fold (fun i _ acc -> i :: acc) t.buckets []
        |> List.sort compare
      in
      let rec walk seen = function
        | [] -> t.max_v
        | i :: rest ->
            let seen = seen + Hashtbl.find t.buckets i in
            if seen > rank then
              (* Clamp to the observed extremes: the bound only tightens. *)
              Float.min t.max_v (Float.max t.min_v (value_of t i))
            else walk seen rest
      in
      walk t.zero keys
    end
  end

let buckets_used t = Hashtbl.length t.buckets + if t.zero > 0 then 1 else 0
