type t = { words : Bytes.t; capacity : int }

(* One byte per 8 members keeps the code simple and endian-free; the graph
   algorithms touch this through [mem]/[add] only. *)
let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let capacity t = t.capacity
let check t i = if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  Bytes.set t.words (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7)) land 0xFF))

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let cardinal t =
  let count = ref 0 in
  for byte = 0 to Bytes.length t.words - 1 do
    let b = ref (Char.code (Bytes.get t.words byte)) in
    while !b <> 0 do
      count := !count + (!b land 1);
      b := !b lsr 1
    done
  done;
  !count

let iter t f =
  for i = 0 to t.capacity - 1 do
    if Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done
