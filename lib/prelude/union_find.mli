(** Disjoint-set forest with union by rank and path compression.

    Used by topology generators to guarantee connectivity and by tests to
    check that generated maps are a single component. *)

type t

val create : int -> t
(** [create n] is [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative; amortised near-constant time. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [true] if they were previously
    distinct. *)

val same : t -> int -> int -> bool
val count_sets : t -> int
(** Number of distinct sets remaining. *)
