(** Fixed-capacity bitset over [0, capacity).

    Dense visited-marks for graph traversals: clearing and membership tests
    are much cheaper than a [Hashtbl] when traversals run thousands of times
    per experiment. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [\[0, capacity)]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit
val cardinal : t -> int
(** Number of set bits; O(capacity/64). *)

val iter : t -> (int -> unit) -> unit
(** Visit set members in increasing order. *)
