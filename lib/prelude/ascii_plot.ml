type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 16) ?y_min ?y_max series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then ""
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let fold f = function [] -> 0.0 | x :: rest -> List.fold_left f x rest in
    let x_lo = fold Float.min xs and x_hi = fold Float.max xs in
    let y_lo_data = fold Float.min ys and y_hi_data = fold Float.max ys in
    let pad = Float.max 1e-9 (0.05 *. (y_hi_data -. y_lo_data)) in
    let y_lo = match y_min with Some v -> v | None -> y_lo_data -. pad in
    let y_hi = match y_max with Some v -> v | None -> y_hi_data +. pad in
    let x_span = if x_hi > x_lo then x_hi -. x_lo else 1.0 in
    let y_span = if y_hi > y_lo then y_hi -. y_lo else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let plot_point glyph (x, y) =
      let col = int_of_float (Float.round ((x -. x_lo) /. x_span *. float_of_int (width - 1))) in
      let row = int_of_float (Float.round ((y -. y_lo) /. y_span *. float_of_int (height - 1))) in
      if col >= 0 && col < width && row >= 0 && row < height then
        grid.(height - 1 - row).(col) <- glyph
    in
    List.iteri
      (fun i s -> List.iter (plot_point glyphs.(i mod Array.length glyphs)) s.points)
      series;
    let buf = Buffer.create (height * (width + 16)) in
    let y_label row =
      (* Label top, middle and bottom rows with their y value. *)
      let value = y_hi -. (float_of_int row /. float_of_int (height - 1) *. y_span) in
      if row = 0 || row = height - 1 || row = height / 2 then Printf.sprintf "%8.2f |" value
      else String.make 8 ' ' ^ " |"
    in
    for row = 0 to height - 1 do
      Buffer.add_string buf (y_label row);
      Buffer.add_string buf (String.init width (fun col -> grid.(row).(col)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make 9 ' ' ^ "+" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf (Printf.sprintf "%9s %-8.6g%*s%8.6g\n" "" x_lo (width - 12) "" x_hi);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%9s %c = %s\n" "" glyphs.(i mod Array.length glyphs) s.label))
      series;
    Buffer.contents buf
  end
