(** Integer-valued histograms and empirical distributions.

    Used for degree distributions and hop-count distributions.  Counts are
    indexed by non-negative integer value. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Record one observation.  @raise Invalid_argument on a negative value. *)

val add_many : t -> int -> int -> unit
(** [add_many h v k] records [k] observations of value [v]. *)

val log2_bucket : float -> int
(** The shared power-of-two bucketing: 0 for NaN and values <= 1, otherwise
    the bucket [b > 0] covering [(2^(b-1), 2^b]]. *)

val add_log2 : t -> float -> unit
(** [add_log2 h v] records [v] into its {!log2_bucket} — the one latency
    bucketing used by {!Simkit.Trace} streams and anything merging with
    them. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every count of [src] into [into] (e.g. to
    combine per-shard or per-replica histograms into one view); [src] is
    unchanged. *)

val clear : t -> unit
(** Drop every count in place (capacity is retained). *)

val count : t -> int -> int
(** Occurrences of a value (0 if never seen). *)

val total : t -> int
val max_observed : t -> int
(** Largest value seen; -1 when empty. *)

val mean : t -> float
val fraction_at : t -> int -> float
(** [fraction_at h v] is [count h v / total h]; 0 on an empty histogram. *)

val ccdf : t -> (int * float) list
(** Complementary CDF: pairs [(v, P(X >= v))] for every observed value [v], in
    increasing value order.  Standard tool for checking heavy tails on log-log
    axes. *)

val to_assoc : t -> (int * int) list
(** [(value, count)] pairs in increasing value order, zero counts omitted. *)
