(* Flight recorder: the bounded ring of recent notable events and its
   JSONL dump, including the end-to-end path — an injected fault breaches
   a join-latency SLO and the dump holds the surrounding RPC and fault
   events. *)

open Simkit

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_validation () =
  match Flight_recorder.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity accepted"

let test_ring_overwrites_oldest () =
  let r = Flight_recorder.create ~capacity:3 () in
  Alcotest.(check int) "empty" 0 (Flight_recorder.count r);
  for i = 1 to 5 do
    Flight_recorder.record r ~ts:(float_of_int i) ~kind:"rpc" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "capacity" 3 (Flight_recorder.capacity r);
  Alcotest.(check int) "retained" 3 (Flight_recorder.count r);
  Alcotest.(check int) "total ever" 5 (Flight_recorder.total_recorded r);
  Alcotest.(check (list string)) "oldest first, oldest two gone" [ "e3"; "e4"; "e5" ]
    (List.map (fun (e : Flight_recorder.event) -> e.detail) (Flight_recorder.events r));
  Flight_recorder.clear r;
  Alcotest.(check int) "cleared" 0 (Flight_recorder.count r);
  Flight_recorder.record r ~ts:9.0 ~kind:"slo" "after clear";
  Alcotest.(check int) "usable after clear" 1 (Flight_recorder.count r)

let test_event_json () =
  let e =
    {
      Flight_recorder.ts = 12.5;
      kind = "rpc";
      detail = "time\"out";
      args = [ ("dst", Span.Int 3); ("latency_ms", Span.Float 1.5); ("fatal", Span.Bool false) ];
    }
  in
  let json = Flight_recorder.event_json e in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains needle json))
    [ "\"ts\": 12.5"; "\"kind\": \"rpc\""; "time\\\"out"; "\"dst\": 3"; "\"fatal\": false" ]

let test_jsonl_shape () =
  let r = Flight_recorder.create ~capacity:8 () in
  Flight_recorder.record r ~ts:1.0 ~kind:"fault" "crash";
  Flight_recorder.record r ~ts:2.0 ~kind:"cluster" "recover";
  let lines = String.split_on_char '\n' (String.trim (Flight_recorder.to_jsonl r)) in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.fail ("unparseable JSONL line: " ^ e))
    lines

(* The acceptance path: crash the primary under a join-latency SLO that
   cannot hold, and the run must both report the breach and leave a flight
   dump with the RPC traffic and the injected fault around it. *)
let test_slo_breach_dumps_context () =
  let config =
    {
      Eval.Resilience_exp.quick_config with
      scenario = "crash-primary";
      slos = [ Slo.of_string_exn "join_p99_ms=1" ];
      audit_rate = 0.5;
    }
  in
  let result, artifacts = Eval.Resilience_exp.run_instrumented config in
  Alcotest.(check (list string)) "breach reported in the result" [ "join_p99_ms=1" ]
    result.Eval.Resilience_exp.slo_breaches;
  Alcotest.(check bool) "breach visible in final statuses" true
    (List.exists (fun st -> st.Slo.breached) artifacts.Eval.Resilience_exp.slo_statuses);
  let events = Flight_recorder.events artifacts.Eval.Resilience_exp.recorder in
  let kinds = List.map (fun (e : Flight_recorder.event) -> e.kind) events in
  let has kind = List.mem kind kinds in
  Alcotest.(check bool) "rpc context retained" true (has "rpc");
  Alcotest.(check bool) "slo transition recorded" true (has "slo");
  Alcotest.(check bool) "cluster events recorded" true (has "cluster");
  Alcotest.(check bool) "injected fault recorded" true (has "fault");
  (* Timestamps are the engine clock, oldest first. *)
  let rec sorted = function
    | (a : Flight_recorder.event) :: (b :: _ as rest) -> a.ts <= b.ts && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological dump" true (sorted events);
  (* The audit fed the same run: live quality streams exist. *)
  match artifacts.Eval.Resilience_exp.audit_trace with
  | None -> Alcotest.fail "audit_rate > 0 must attach an auditor"
  | Some t ->
      Alcotest.(check bool) "live samples collected" true
        (Simkit.Trace.counter t "audit_samples" > 0)

let test_no_slo_no_breach () =
  let config = { Eval.Resilience_exp.quick_config with scenario = "none" } in
  let result, artifacts = Eval.Resilience_exp.run_instrumented config in
  Alcotest.(check (list string)) "nothing breached" [] result.Eval.Resilience_exp.slo_breaches;
  Alcotest.(check bool) "recorder still collected context" true
    (Flight_recorder.count artifacts.Eval.Resilience_exp.recorder > 0)

let suite =
  ( "flight-recorder",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "ring overwrites oldest" `Quick test_ring_overwrites_oldest;
      Alcotest.test_case "event json" `Quick test_event_json;
      Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
      Alcotest.test_case "SLO breach dumps context" `Quick test_slo_breach_dumps_context;
      Alcotest.test_case "clean run stays quiet" `Quick test_no_slo_no_breach;
    ] )
