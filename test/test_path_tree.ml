(* Path_tree: the paper's core data structure. *)

open Nearby

let lmk = 100

(* Paths mirroring the paper drawing: peers meeting at router 3 (the "rc"). *)
let path_a = [| 10; 11; 3; 2; lmk |] (* peer at distance 2 from the meeting router *)
let path_b = [| 20; 21; 3; 2; lmk |]
let path_c = [| 30; 2; lmk |] (* meets a/b only at router 2 *)

let populated () =
  let t = Path_tree.create ~landmark:lmk in
  Path_tree.insert t ~peer:0 ~routers:path_a;
  Path_tree.insert t ~peer:1 ~routers:path_b;
  Path_tree.insert t ~peer:2 ~routers:path_c;
  t

let test_basic_accessors () =
  let t = populated () in
  Alcotest.(check int) "landmark" lmk (Path_tree.landmark t);
  Alcotest.(check int) "members" 3 (Path_tree.member_count t);
  Alcotest.(check bool) "mem" true (Path_tree.mem t 0);
  Alcotest.(check bool) "not mem" false (Path_tree.mem t 9);
  Alcotest.(check (option int)) "depth a" (Some 4) (Path_tree.depth t 0);
  Alcotest.(check (option int)) "depth c" (Some 2) (Path_tree.depth t 2);
  Alcotest.(check (option (array int))) "path_of copies" (Some path_a) (Path_tree.path_of t 0);
  (* Distinct routers: 10 11 3 2 100 20 21 30 = 8. *)
  Alcotest.(check int) "router count" 8 (Path_tree.router_count t)

let test_insert_validation () =
  let t = populated () in
  Alcotest.check_raises "empty path" (Invalid_argument "Path_tree.insert: empty path") (fun () ->
      Path_tree.insert t ~peer:9 ~routers:[||]);
  Alcotest.check_raises "wrong landmark"
    (Invalid_argument "Path_tree.insert: path must end at the landmark") (fun () ->
      Path_tree.insert t ~peer:9 ~routers:[| 1; 2 |]);
  Alcotest.check_raises "duplicate peer" (Invalid_argument "Path_tree.insert: peer already registered")
    (fun () -> Path_tree.insert t ~peer:0 ~routers:path_a)

let test_meeting_point () =
  let t = populated () in
  (match Path_tree.meeting_point t 0 1 with
  | Some (router, d1, d2) ->
      Alcotest.(check int) "meeting router" 3 router;
      Alcotest.(check int) "distance a" 2 d1;
      Alcotest.(check int) "distance b" 2 d2
  | None -> Alcotest.fail "expected a meeting point");
  (match Path_tree.meeting_point t 0 2 with
  | Some (router, d1, d2) ->
      Alcotest.(check int) "meets c at 2" 2 router;
      Alcotest.(check int) "a to 2" 3 d1;
      Alcotest.(check int) "c to 2" 1 d2
  | None -> Alcotest.fail "expected a meeting point");
  Alcotest.(check bool) "unknown peer" true (Path_tree.meeting_point t 0 9 = None)

let test_meeting_point_symmetry () =
  let t = populated () in
  match (Path_tree.meeting_point t 0 1, Path_tree.meeting_point t 1 0) with
  | Some (r, d1, d2), Some (r', d1', d2') ->
      Alcotest.(check int) "router" r r';
      Alcotest.(check int) "swapped distances" d1 d2';
      Alcotest.(check int) "swapped distances 2" d2 d1'
  | _ -> Alcotest.fail "expected meeting points"

let test_dtree () =
  let t = populated () in
  Alcotest.(check (option int)) "dtree a b" (Some 4) (Path_tree.dtree t 0 1);
  Alcotest.(check (option int)) "dtree a c" (Some 4) (Path_tree.dtree t 0 2);
  Alcotest.(check (option int)) "dtree b c" (Some 4) (Path_tree.dtree t 1 2);
  Alcotest.(check (option int)) "self" (Some 0) (Path_tree.dtree t 0 0);
  Alcotest.(check (option int)) "missing" None (Path_tree.dtree t 0 42)

let test_same_attach_router () =
  let t = Path_tree.create ~landmark:lmk in
  Path_tree.insert t ~peer:0 ~routers:[| 5; 6; lmk |];
  Path_tree.insert t ~peer:1 ~routers:[| 5; 6; lmk |];
  Alcotest.(check (option int)) "colocated peers" (Some 0) (Path_tree.dtree t 0 1)

let test_query_basic () =
  let t = populated () in
  Alcotest.(check (list (pair int int))) "query for a" [ (1, 4); (2, 4) ]
    (Path_tree.query_member t ~peer:0 ~k:5);
  Alcotest.(check (list (pair int int))) "k = 1" [ (1, 4) ] (Path_tree.query_member t ~peer:0 ~k:1);
  Alcotest.(check (list (pair int int))) "k = 0" [] (Path_tree.query t ~routers:path_a ~k:0 ())

let test_query_excludes_self_only_with_member () =
  let t = populated () in
  let all = Path_tree.query t ~routers:path_a ~k:5 () in
  (* Unregistered query with peer 0's path sees peer 0 at distance 0. *)
  Alcotest.(check (list (pair int int))) "includes the registered twin" [ (0, 0); (1, 4); (2, 4) ] all

let test_query_exclude_predicate () =
  let t = populated () in
  let result = Path_tree.query t ~routers:path_a ~k:5 ~exclude:(fun p -> p = 0 || p = 1) () in
  Alcotest.(check (list (pair int int))) "filtered" [ (2, 4) ] result

let test_query_newcomer_path () =
  let t = populated () in
  (* A newcomer attaching under router 11 (on peer 0's path). *)
  let newcomer = [| 40; 11; 3; 2; lmk |] in
  let result = Path_tree.query t ~routers:newcomer ~k:2 () in
  (* Meets peer 0 at router 11 (1 + 1 hops) and peer 1 only at router 3
     (2 + 2 hops). *)
  Alcotest.(check (list (pair int int))) "closest is peer 0 via router 11" [ (0, 2); (1, 4) ] result

let test_query_missing_member () =
  let t = populated () in
  Alcotest.check_raises "unregistered" Not_found (fun () ->
      ignore (Path_tree.query_member t ~peer:77 ~k:3))

let test_remove () =
  let t = populated () in
  Path_tree.remove t 1;
  Alcotest.(check int) "members" 2 (Path_tree.member_count t);
  Alcotest.(check bool) "gone" false (Path_tree.mem t 1);
  Alcotest.(check (list (pair int int))) "query no longer sees it" [ (2, 4) ]
    (Path_tree.query_member t ~peer:0 ~k:5);
  Path_tree.check_invariants t;
  (* Router 20/21 buckets disappeared. *)
  Alcotest.(check int) "routers shrunk" 6 (Path_tree.router_count t);
  Alcotest.check_raises "double remove" Not_found (fun () -> Path_tree.remove t 1)

let test_invariants_detect_nothing_on_good_tree () =
  Path_tree.check_invariants (populated ())

let test_truncated_path_registration () =
  let t = Path_tree.create ~landmark:lmk in
  (* A decreased traceroute that only kept the attachment, one mid router
     and the landmark. *)
  Path_tree.insert t ~peer:0 ~routers:[| 10; 3; lmk |];
  Path_tree.insert t ~peer:1 ~routers:[| 20; 3; lmk |];
  Alcotest.(check (option int)) "approximate dtree" (Some 2) (Path_tree.dtree t 0 1)

let test_iter_members () =
  let t = populated () in
  let seen = ref [] in
  Path_tree.iter_members t (fun p -> seen := p :: !seen);
  Alcotest.(check (list int)) "all members" [ 0; 1; 2 ] (List.sort compare !seen)

(* Brute-force reference: dtree between a query path and every member, via
   first-common-router scan. *)
let reference_query t ~paths ~routers ~k =
  let dtree_of path =
    let len_q = Array.length routers and len_p = Array.length path in
    let rec suffix j =
      if j < min len_q len_p && routers.(len_q - 1 - j) = path.(len_p - 1 - j) then suffix (j + 1)
      else j
    in
    let j = suffix 0 in
    if j = 0 then None else Some (len_q - j + (len_p - j))
  in
  ignore t;
  let candidates =
    List.filter_map
      (fun (peer, path) -> match dtree_of path with Some d -> Some (d, peer) | None -> None)
      paths
  in
  List.filteri (fun i _ -> i < k) (List.sort compare candidates)
  |> List.map (fun (d, p) -> (p, d))

let qcheck_query_matches_bruteforce =
  (* Random sink-tree-consistent paths: build a random tree over routers
     rooted at the landmark, peers attach at random routers. *)
  QCheck.Test.make ~name:"query = brute force over registered members" ~count:100
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, n_peers) ->
      let rng = Prelude.Prng.create seed in
      let n_routers = 30 in
      (* parent.(r) for r > 0 is a random router with smaller id; router 0 is
         the landmark. *)
      let parent = Array.init n_routers (fun r -> if r = 0 then -1 else Prelude.Prng.int rng r) in
      let path_from r =
        let rec climb r acc = if r = 0 then List.rev (0 :: acc) else climb parent.(r) (r :: acc) in
        Array.of_list (climb r [])
      in
      let t = Path_tree.create ~landmark:0 in
      let paths = ref [] in
      for peer = 0 to n_peers - 1 do
        let attach = Prelude.Prng.int rng n_routers in
        let path = path_from attach in
        Path_tree.insert t ~peer ~routers:path;
        paths := (peer, path) :: !paths
      done;
      Path_tree.check_invariants t;
      (* Query with a fresh random attachment. *)
      let q_path = path_from (Prelude.Prng.int rng n_routers) in
      let k = 1 + Prelude.Prng.int rng 5 in
      let got = Path_tree.query t ~routers:q_path ~k () in
      let want = reference_query t ~paths:!paths ~routers:q_path ~k in
      got = want)

let qcheck_insert_remove_roundtrip =
  QCheck.Test.make ~name:"insert then remove restores the tree" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Prelude.Prng.create seed in
      let t = populated () in
      let before = List.sort compare (Path_tree.query_member t ~peer:0 ~k:10) in
      let extra_path = [| 50 + Prelude.Prng.int rng 10; 3; 2; lmk |] in
      Path_tree.insert t ~peer:99 ~routers:extra_path;
      Path_tree.check_invariants t;
      Path_tree.remove t 99;
      Path_tree.check_invariants t;
      List.sort compare (Path_tree.query_member t ~peer:0 ~k:10) = before
      && not (Path_tree.mem t 99))

(* --- Naive registry: same answers, different asymptotics --- *)

let test_naive_matches_on_fixture () =
  let t = populated () in
  let naive = Naive_registry.create ~landmark:lmk in
  List.iter
    (fun (peer, routers) -> Naive_registry.insert naive ~peer ~routers)
    [ (0, path_a); (1, path_b); (2, path_c) ];
  Alcotest.(check (option int)) "dtree agrees" (Path_tree.dtree t 0 1) (Naive_registry.dtree naive 0 1);
  for peer = 0 to 2 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "query for %d agrees" peer)
      (Path_tree.query_member t ~peer ~k:5)
      (Naive_registry.query_member naive ~peer ~k:5)
  done;
  Alcotest.(check int) "member count" 3 (Naive_registry.member_count naive);
  Naive_registry.remove naive 0;
  Alcotest.check_raises "removed" Not_found (fun () ->
      ignore (Naive_registry.query_member naive ~peer:0 ~k:1))

let qcheck_naive_equivalence =
  QCheck.Test.make ~name:"naive registry = path tree on random sink trees" ~count:100
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, n_peers) ->
      let rng = Prelude.Prng.create (seed + 777) in
      let n_routers = 25 in
      let parent = Array.init n_routers (fun r -> if r = 0 then -1 else Prelude.Prng.int rng r) in
      let path_from r =
        let rec climb r acc = if r = 0 then List.rev (0 :: acc) else climb parent.(r) (r :: acc) in
        Array.of_list (climb r [])
      in
      let t = Path_tree.create ~landmark:0 in
      let naive = Naive_registry.create ~landmark:0 in
      for peer = 0 to n_peers - 1 do
        let path = path_from (Prelude.Prng.int rng n_routers) in
        Path_tree.insert t ~peer ~routers:path;
        Naive_registry.insert naive ~peer ~routers:path
      done;
      let q_path = path_from (Prelude.Prng.int rng n_routers) in
      let k = 1 + Prelude.Prng.int rng 6 in
      Path_tree.query t ~routers:q_path ~k () = Naive_registry.query naive ~routers:q_path ~k ())

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "path_tree",
    [
      Alcotest.test_case "accessors" `Quick test_basic_accessors;
      Alcotest.test_case "insert validation" `Quick test_insert_validation;
      Alcotest.test_case "meeting point" `Quick test_meeting_point;
      Alcotest.test_case "meeting point symmetry" `Quick test_meeting_point_symmetry;
      Alcotest.test_case "dtree" `Quick test_dtree;
      Alcotest.test_case "colocated peers" `Quick test_same_attach_router;
      Alcotest.test_case "query basic" `Quick test_query_basic;
      Alcotest.test_case "query unregistered twin" `Quick test_query_excludes_self_only_with_member;
      Alcotest.test_case "query exclude" `Quick test_query_exclude_predicate;
      Alcotest.test_case "query newcomer" `Quick test_query_newcomer_path;
      Alcotest.test_case "query missing member" `Quick test_query_missing_member;
      Alcotest.test_case "remove" `Quick test_remove;
      Alcotest.test_case "invariants" `Quick test_invariants_detect_nothing_on_good_tree;
      Alcotest.test_case "truncated registration" `Quick test_truncated_path_registration;
      Alcotest.test_case "iter members" `Quick test_iter_members;
      q qcheck_query_matches_bruteforce;
      q qcheck_insert_remove_roundtrip;
      Alcotest.test_case "naive registry fixture" `Quick test_naive_matches_on_fixture;
      q qcheck_naive_equivalence;
    ] )
