(* The dependency-free JSON reader and the bench regression gate built on
   top of it. *)

let parse_exn s =
  match Simkit.Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "%S: %s" s e)

(* --- Simkit.Json ------------------------------------------------------- *)

let test_json_scalars () =
  Alcotest.(check bool) "null" true (parse_exn "null" = Simkit.Json.Null);
  Alcotest.(check bool) "true" true (parse_exn "true" = Simkit.Json.Bool true);
  Alcotest.(check (option (float 1e-9))) "int" (Some 42.0)
    (Simkit.Json.to_float (parse_exn "42"));
  Alcotest.(check (option (float 1e-9))) "negative exponent" (Some (-1.5e3))
    (Simkit.Json.to_float (parse_exn "-1.5e3"));
  Alcotest.(check (option string)) "escapes" (Some "a\"b\\c\n")
    (Simkit.Json.to_string (parse_exn "\"a\\\"b\\\\c\\n\""))

let test_json_structures () =
  let doc = parse_exn {| {"meta": {"seed": 7}, "runs": [1, 2, 3], "flag": false} |} in
  Alcotest.(check (option (float 1e-9))) "path" (Some 7.0)
    (Option.bind (Simkit.Json.path [ "meta"; "seed" ] doc) Simkit.Json.to_float);
  Alcotest.(check (option bool)) "bool member" (Some false)
    (Option.bind (Simkit.Json.member "flag" doc) Simkit.Json.to_bool);
  (match Option.bind (Simkit.Json.member "runs" doc) Simkit.Json.to_list with
  | Some l -> Alcotest.(check int) "array length" 3 (List.length l)
  | None -> Alcotest.fail "runs not a list");
  Alcotest.(check bool) "missing member" true (Simkit.Json.member "nope" doc = None)

let test_json_rejects_garbage () =
  let rejects s =
    match Simkit.Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
  in
  rejects "";
  rejects "{";
  rejects "[1, 2,]";
  rejects "{\"a\" 1}";
  rejects "1 2" (* trailing content *);
  rejects "nul"

let test_json_roundtrips_own_exporters () =
  (* Everything this repo writes must be readable by its own reader. *)
  let t = Simkit.Trace.create () in
  Simkit.Trace.incr t "joins";
  List.iter (Simkit.Trace.observe t "lat") [ 1.0; 5.0; 9.0 ];
  let ts = Simkit.Timeseries.create ~window_ms:10.0 () in
  Simkit.Timeseries.observe ts "lat" ~now:0.0 1.0;
  Simkit.Timeseries.observe ts "lat" ~now:25.0 2.0;
  let doc =
    Simkit.Export.metrics_json
      ~meta:(Simkit.Export.capture_meta ~seed:3 ())
      ~timeseries:[ ("run", ts) ]
      [ ("server", t) ]
  in
  let parsed = parse_exn doc in
  Alcotest.(check (option (float 1e-9))) "counter via reader" (Some 1.0)
    (Option.bind
       (Simkit.Json.path [ "sections"; "server"; "counters"; "joins" ] parsed)
       Simkit.Json.to_float);
  Alcotest.(check bool) "timeseries key readable" true
    (Simkit.Json.path [ "timeseries"; "run"; "series"; "lat" ] parsed <> None)

(* --- Regression gate --------------------------------------------------- *)

let registry_doc ~dht_query =
  parse_exn
    (Printf.sprintf
       {| {"backends": [
            {"backend": "tree", "insert_ops_per_s": 1000.0, "query_ops_per_s": 2000.0,
             "answers_identical": true},
            {"backend": "dht", "insert_ops_per_s": 500.0, "query_ops_per_s": %g,
             "answers_identical": true}
          ]} |}
       dht_query)

let test_gate_passes_identical () =
  let doc = registry_doc ~dht_query:1000.0 in
  let metrics = Eval.Regression.registry_metrics doc in
  let comparisons = Eval.Regression.compare_metrics ~baseline:metrics ~current:metrics in
  Alcotest.(check int) "no failures" 0 (List.length (Eval.Regression.failures comparisons))

let test_gate_normalizes_to_tree () =
  (* Both backends 2x slower in absolute terms: relative metrics are
     unchanged, so a slower CI machine does not fail the gate. *)
  let baseline = Eval.Regression.registry_metrics (registry_doc ~dht_query:1000.0) in
  let scaled =
    parse_exn
      {| {"backends": [
           {"backend": "tree", "insert_ops_per_s": 500.0, "query_ops_per_s": 1000.0,
            "answers_identical": true},
           {"backend": "dht", "insert_ops_per_s": 250.0, "query_ops_per_s": 500.0,
            "answers_identical": true}
         ]} |}
  in
  let current = Eval.Regression.registry_metrics scaled in
  let comparisons = Eval.Regression.compare_metrics ~baseline ~current in
  Alcotest.(check int) "machine speed cancels" 0
    (List.length (Eval.Regression.failures comparisons))

let test_gate_catches_relative_regression () =
  let baseline = Eval.Regression.registry_metrics (registry_doc ~dht_query:1000.0) in
  (* dht query throughput drops 80% relative to tree — beyond the 60%
     tolerance. *)
  let current = Eval.Regression.registry_metrics (registry_doc ~dht_query:200.0) in
  let failures =
    Eval.Regression.failures (Eval.Regression.compare_metrics ~baseline ~current)
  in
  Alcotest.(check (list string)) "exactly the degraded metric"
    [ "registry/dht/query_rel_tree" ]
    (List.map (fun (c : Eval.Regression.comparison) -> c.name) failures)

let test_gate_fails_on_flipped_invariant () =
  let baseline = Eval.Regression.registry_metrics (registry_doc ~dht_query:1000.0) in
  let broken =
    parse_exn
      {| {"backends": [
           {"backend": "tree", "insert_ops_per_s": 1000.0, "query_ops_per_s": 2000.0,
            "answers_identical": true},
           {"backend": "dht", "insert_ops_per_s": 500.0, "query_ops_per_s": 1000.0,
            "answers_identical": false}
         ]} |}
  in
  let failures =
    Eval.Regression.failures
      (Eval.Regression.compare_metrics ~baseline
         ~current:(Eval.Regression.registry_metrics broken))
  in
  Alcotest.(check bool) "exact boolean gates" true
    (List.exists
       (fun (c : Eval.Regression.comparison) -> c.name = "registry/dht/answers_identical")
       failures)

let test_gate_fails_on_missing_metric () =
  let baseline = Eval.Regression.registry_metrics (registry_doc ~dht_query:1000.0) in
  let shrunk =
    parse_exn
      {| {"backends": [
           {"backend": "tree", "insert_ops_per_s": 1000.0, "query_ops_per_s": 2000.0,
            "answers_identical": true}
         ]} |}
  in
  let failures =
    Eval.Regression.failures
      (Eval.Regression.compare_metrics ~baseline
         ~current:(Eval.Regression.registry_metrics shrunk))
  in
  Alcotest.(check int) "every dht metric missing fails" 3 (List.length failures);
  List.iter
    (fun (c : Eval.Regression.comparison) ->
      Alcotest.(check bool) "flagged as missing" true (c.current = None))
    failures

let test_resilience_metrics_shape () =
  let doc =
    parse_exn
      {| {"runs": [
           {"scenario": "crash-primary", "replicas": 3, "completion_rate": 1.0,
            "join_p99_ms": 120.5, "consistent": true}
         ]} |}
  in
  let metrics = Eval.Regression.resilience_metrics doc in
  Alcotest.(check (list string)) "per scenario x replicas keys"
    [
      "resilience/crash-primary/r3/completion_rate";
      "resilience/crash-primary/r3/join_p99_ms";
      "resilience/crash-primary/r3/consistent";
    ]
    (List.map (fun (m : Eval.Regression.metric) -> m.name) metrics);
  (* join_p99 is Lower_better: a 10% slowdown sits inside the 15% band,
     a 30% one does not. *)
  let bump f =
    List.map
      (fun (m : Eval.Regression.metric) ->
        if m.name = "resilience/crash-primary/r3/join_p99_ms" then
          { m with Eval.Regression.value = m.value *. f }
        else m)
      metrics
  in
  let failures current =
    List.length
      (Eval.Regression.failures (Eval.Regression.compare_metrics ~baseline:metrics ~current))
  in
  Alcotest.(check int) "10%% slower passes" 0 (failures (bump 1.10));
  Alcotest.(check int) "30%% slower fails" 1 (failures (bump 1.30))

let suite =
  ( "regression-gate",
    [
      Alcotest.test_case "json scalars" `Quick test_json_scalars;
      Alcotest.test_case "json structures" `Quick test_json_structures;
      Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
      Alcotest.test_case "json reads own exporters" `Quick test_json_roundtrips_own_exporters;
      Alcotest.test_case "identical docs pass" `Quick test_gate_passes_identical;
      Alcotest.test_case "machine speed cancels" `Quick test_gate_normalizes_to_tree;
      Alcotest.test_case "relative regression fails" `Quick test_gate_catches_relative_regression;
      Alcotest.test_case "flipped invariant fails" `Quick test_gate_fails_on_flipped_invariant;
      Alcotest.test_case "missing metric fails" `Quick test_gate_fails_on_missing_metric;
      Alcotest.test_case "resilience tolerances" `Quick test_resilience_metrics_shape;
    ] )
