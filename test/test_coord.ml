(* Vector, Nelder_mead, Vivaldi, Gnp. *)

open Coord

let feq = Alcotest.(check (float 1e-9))

let test_vector_ops () =
  let a = [| 1.0; 2.0 |] and b = [| 3.0; -1.0 |] in
  Alcotest.(check (array (float 1e-9))) "add" [| 4.0; 1.0 |] (Vector.add a b);
  Alcotest.(check (array (float 1e-9))) "sub" [| -2.0; 3.0 |] (Vector.sub a b);
  Alcotest.(check (array (float 1e-9))) "scale" [| 2.0; 4.0 |] (Vector.scale 2.0 a);
  feq "dot" 1.0 (Vector.dot a b);
  feq "norm" 5.0 (Vector.norm [| 3.0; 4.0 |]);
  feq "distance" 5.0 (Vector.distance [| 0.0; 0.0 |] [| 3.0; 4.0 |]);
  Alcotest.(check (array (float 1e-9))) "zeros" [| 0.0; 0.0; 0.0 |] (Vector.zeros 3)

let test_unit_toward () =
  let rng = Prelude.Prng.create 1 in
  let u = Vector.unit_toward [| 4.0; 0.0 |] [| 1.0; 0.0 |] ~rng in
  Alcotest.(check (array (float 1e-9))) "points from b to a" [| 1.0; 0.0 |] u;
  (* Coincident points: random unit direction. *)
  let r = Vector.unit_toward [| 2.0; 2.0 |] [| 2.0; 2.0 |] ~rng in
  feq "unit norm" 1.0 (Vector.norm r)

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let r = Nelder_mead.minimize ~f ~x0:[| 0.0; 0.0 |] ~scale:1.0 () in
  Alcotest.(check bool) "x near 3" true (abs_float (r.x.(0) -. 3.0) < 1e-3);
  Alcotest.(check bool) "y near -1" true (abs_float (r.x.(1) +. 1.0) < 1e-3);
  Alcotest.(check bool) "minimum near 0" true (r.f < 1e-6)

let test_nelder_mead_1d () =
  let f x = ((x.(0) -. 7.0) ** 2.0) +. 0.5 in
  let r = Nelder_mead.minimize ~f ~x0:[| 0.0 |] ~scale:2.0 () in
  Alcotest.(check bool) "1-d minimum" true (abs_float (r.x.(0) -. 7.0) < 1e-3);
  Alcotest.(check bool) "offset preserved" true (abs_float (r.f -. 0.5) < 1e-6)

let test_nelder_mead_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let r = Nelder_mead.minimize ~max_iter:5000 ~f ~x0:[| -1.0; 1.0 |] ~scale:0.5 () in
  Alcotest.(check bool) (Printf.sprintf "rosenbrock f = %g" r.f) true (r.f < 1e-4)

let test_nelder_mead_iterations_bounded () =
  let f x = x.(0) *. x.(0) in
  let r = Nelder_mead.minimize ~max_iter:5 ~f ~x0:[| 100.0 |] ~scale:1.0 () in
  Alcotest.(check bool) "respects max_iter" true (r.iterations <= 5);
  Alcotest.check_raises "empty x0" (Invalid_argument "Nelder_mead.minimize: empty starting point")
    (fun () -> ignore (Nelder_mead.minimize ~f ~x0:[||] ~scale:1.0 ()))

(* Synthetic ground truth: hosts on a 2-D grid, RTT = Euclidean distance.
   Both coordinate systems should embed this almost perfectly. *)
let grid_positions n rng =
  Array.init n (fun _ -> [| Prelude.Prng.float rng 100.0; Prelude.Prng.float rng 100.0 |])

let test_vivaldi_converges_on_euclidean_rtts () =
  let rng = Prelude.Prng.create 21 in
  let n = 30 in
  let pos = grid_positions n rng in
  let measure i j = Vector.distance pos.(i) pos.(j) in
  let params = { Vivaldi.default_params with use_height = false } in
  let v = Vivaldi.create params ~node_count:n ~rng:(Prelude.Prng.split rng) in
  let err_before = Vivaldi.relative_error v ~measure ~samples:300 ~rng in
  for _ = 1 to 60 do
    Vivaldi.run_round v ~measure ~rng
  done;
  let err_after = Vivaldi.relative_error v ~measure ~samples:300 ~rng in
  Alcotest.(check bool)
    (Printf.sprintf "error drops (%.3f -> %.3f)" err_before err_after)
    true
    (err_after < 0.25 && err_after < err_before /. 2.0)

let test_vivaldi_error_decreases () =
  let rng = Prelude.Prng.create 22 in
  let n = 20 in
  let pos = grid_positions n rng in
  let measure i j = Vector.distance pos.(i) pos.(j) in
  let v = Vivaldi.create Vivaldi.default_params ~node_count:n ~rng:(Prelude.Prng.split rng) in
  Alcotest.(check (float 1e-9)) "initial confidence is worst" 1.0 (Vivaldi.local_error v 0);
  for _ = 1 to 30 do
    Vivaldi.run_round v ~measure ~rng
  done;
  Alcotest.(check bool) "confidence improves" true (Vivaldi.local_error v 0 < 1.0)

let test_vivaldi_neighbor_restricted () =
  let rng = Prelude.Prng.create 28 in
  let n = 24 in
  let pos = grid_positions n rng in
  let measure i j = Vector.distance pos.(i) pos.(j) in
  let params = { Vivaldi.default_params with use_height = false } in
  let v = Vivaldi.create params ~node_count:n ~rng:(Prelude.Prng.split rng) in
  (* Ring overlay: each node gossips with its 4 ring neighbors only. *)
  let neighbors i = [| (i + 1) mod n; (i + 2) mod n; (i + n - 1) mod n; (i + n - 2) mod n |] in
  for _ = 1 to 80 do
    Vivaldi.run_round_with_neighbors v ~neighbors ~measure ~rng
  done;
  let err = Vivaldi.relative_error v ~measure ~samples:300 ~rng in
  Alcotest.(check bool) (Printf.sprintf "restricted gossip still converges (%.3f)" err) true
    (err < 0.6);
  (* Empty neighbor lists must be a harmless no-op. *)
  let w = Vivaldi.create params ~node_count:3 ~rng in
  Vivaldi.run_round_with_neighbors w ~neighbors:(fun _ -> [||]) ~measure:(fun _ _ -> 1.0) ~rng;
  Alcotest.(check (float 1e-9)) "untouched error" 1.0 (Vivaldi.local_error w 0)

let test_vivaldi_observe_validation () =
  let rng = Prelude.Prng.create 23 in
  let v = Vivaldi.create Vivaldi.default_params ~node_count:3 ~rng in
  Alcotest.check_raises "bad rtt" (Invalid_argument "Vivaldi.observe: bad RTT") (fun () ->
      Vivaldi.observe v ~i:0 ~j:1 ~rtt:(-3.0));
  Alcotest.check_raises "self" (Invalid_argument "Vivaldi.observe: self-measurement") (fun () ->
      Vivaldi.observe v ~i:1 ~j:1 ~rtt:5.0)

let test_vivaldi_symmetric_estimate () =
  let rng = Prelude.Prng.create 24 in
  let v = Vivaldi.create Vivaldi.default_params ~node_count:4 ~rng in
  Vivaldi.observe v ~i:0 ~j:1 ~rtt:10.0;
  Vivaldi.observe v ~i:1 ~j:0 ~rtt:10.0;
  Alcotest.(check (float 1e-9)) "estimate symmetric" (Vivaldi.estimate v 0 1) (Vivaldi.estimate v 1 0)

let test_gnp_embeds_euclidean () =
  let rng = Prelude.Prng.create 25 in
  let pos = grid_positions 12 rng in
  let measure i j = Vector.distance pos.(i) pos.(j) in
  let landmarks = [| 0; 1; 2; 3; 4 |] in
  let t = Gnp.embed_landmarks ~dims:2 ~landmarks ~measure ~rng in
  Alcotest.(check bool) (Printf.sprintf "landmark fit %.4f" (Gnp.fit_error t)) true (Gnp.fit_error t < 0.05);
  (* Place the remaining hosts and check pairwise predictions. *)
  let coords =
    Array.init 12 (fun i ->
        if i < 5 then Gnp.landmark_coordinate t i
        else Gnp.place_host t ~rtts:(Array.map (fun l -> measure i l) landmarks))
  in
  let errs = ref [] in
  for i = 0 to 11 do
    for j = i + 1 to 11 do
      let actual = measure i j in
      if actual > 1.0 then begin
        let predicted = Gnp.estimate coords.(i) coords.(j) in
        errs := (abs_float (predicted -. actual) /. actual) :: !errs
      end
    done
  done;
  let median = Prelude.Stats.median (Array.of_list !errs) in
  Alcotest.(check bool) (Printf.sprintf "median relative error %.3f" median) true (median < 0.15)

let test_gnp_validation () =
  let rng = Prelude.Prng.create 26 in
  Alcotest.check_raises "too few landmarks"
    (Invalid_argument "Gnp.embed_landmarks: need at least dims + 1 landmarks") (fun () ->
      ignore (Gnp.embed_landmarks ~dims:3 ~landmarks:[| 0; 1 |] ~measure:(fun _ _ -> 1.0) ~rng));
  let t = Gnp.embed_landmarks ~dims:2 ~landmarks:[| 0; 1; 2 |] ~measure:(fun _ _ -> 10.0) ~rng in
  Alcotest.check_raises "rtt vector length"
    (Invalid_argument "Gnp.place_host: RTT vector length must match landmark count") (fun () ->
      ignore (Gnp.place_host t ~rtts:[| 1.0 |]));
  Alcotest.(check (array int)) "ids preserved" [| 0; 1; 2 |] (Gnp.landmark_ids t)

(* --- Meridian --- *)

let meridian_fixture ~peers ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 500) ~seed in
  let rng = Prelude.Prng.create seed in
  let peer_routers =
    Array.map (fun i -> map.leaves.(i))
      (Prelude.Prng.sample_without_replacement rng ~k:peers ~n:(Array.length map.leaves))
  in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let overlay = Meridian.build Meridian.default_params oracle ~peer_routers ~rng in
  (map, peer_routers, oracle, overlay, rng)

let test_meridian_rings_well_formed () =
  let _, peer_routers, oracle, overlay, _ = meridian_fixture ~peers:40 ~seed:31 in
  Alcotest.(check int) "peer count" 40 (Meridian.peer_count overlay);
  let params = Meridian.default_params in
  for peer = 0 to 39 do
    for ring = 0 to params.rings - 1 do
      let members = Meridian.ring_of overlay ~peer ~ring in
      Alcotest.(check bool) "bounded size" true (List.length members <= params.members_per_ring);
      List.iter
        (fun m ->
          Alcotest.(check bool) "no self" true (m <> peer);
          (* The member's RTT really falls in (or below) the ring's range. *)
          let rtt =
            Traceroute.Probe.ping oracle ~src:peer_routers.(peer) ~dst:peer_routers.(m)
          in
          let upper = params.ring_base_ms *. (2.0 ** float_of_int ring) in
          Alcotest.(check bool)
            (Printf.sprintf "rtt %.1f within ring %d upper %.1f" rtt ring upper)
            true
            (ring = params.rings - 1 || rtt < upper +. 1e-9))
        members
    done
  done

let test_meridian_search_improves_on_entry () =
  let _, peer_routers, oracle, overlay, rng = meridian_fixture ~peers:50 ~seed:32 in
  for _ = 1 to 20 do
    let target = Prelude.Prng.int rng 50 in
    let entry = (target + 1 + Prelude.Prng.int rng 48) mod 50 in
    let entry = if entry = target then (entry + 1) mod 50 else entry in
    let search =
      Meridian.closest_search ~exclude:(fun p -> p = target) overlay
        ~target_router:peer_routers.(target) ~entry
    in
    let entry_rtt = Traceroute.Probe.ping oracle ~src:peer_routers.(entry) ~dst:peer_routers.(target) in
    Alcotest.(check bool) "never worse than the entry" true (search.rtt_ms <= entry_rtt +. 1e-9);
    Alcotest.(check bool) "found is not the target" true (search.found <> target);
    Alcotest.(check bool) "probes counted" true (search.probes_sent >= 1);
    Alcotest.(check bool) "elapsed positive" true (search.elapsed_ms > 0.0)
  done

let test_meridian_k_nearest_sane () =
  let _, peer_routers, _, overlay, _ = meridian_fixture ~peers:30 ~seed:33 in
  let result = Meridian.k_nearest ~exclude:(fun p -> p = 0) overlay ~target_router:peer_routers.(0) ~entry:5 ~k:4 in
  Alcotest.(check bool) "at most k" true (List.length result <= 4);
  Alcotest.(check bool) "never the excluded target" true (List.for_all (fun p -> p <> 0) result);
  Alcotest.(check int) "distinct" (List.length result) (List.length (List.sort_uniq compare result));
  Alcotest.(check (list int)) "k = 0" [] (Meridian.k_nearest overlay ~target_router:peer_routers.(0) ~entry:5 ~k:0)

let test_meridian_validation () =
  let _, peer_routers, _, overlay, _ = meridian_fixture ~peers:10 ~seed:34 in
  Alcotest.check_raises "bad entry" (Invalid_argument "Meridian.closest_search: bad entry")
    (fun () -> ignore (Meridian.closest_search overlay ~target_router:peer_routers.(0) ~entry:99))

let suite =
  ( "coord",
    [
      Alcotest.test_case "vector ops" `Quick test_vector_ops;
      Alcotest.test_case "unit toward" `Quick test_unit_toward;
      Alcotest.test_case "nelder-mead quadratic" `Quick test_nelder_mead_quadratic;
      Alcotest.test_case "nelder-mead 1d" `Quick test_nelder_mead_1d;
      Alcotest.test_case "nelder-mead rosenbrock" `Quick test_nelder_mead_rosenbrock;
      Alcotest.test_case "nelder-mead bounds" `Quick test_nelder_mead_iterations_bounded;
      Alcotest.test_case "vivaldi converges" `Slow test_vivaldi_converges_on_euclidean_rtts;
      Alcotest.test_case "vivaldi error decreases" `Quick test_vivaldi_error_decreases;
      Alcotest.test_case "vivaldi neighbor-restricted" `Slow test_vivaldi_neighbor_restricted;
      Alcotest.test_case "vivaldi validation" `Quick test_vivaldi_observe_validation;
      Alcotest.test_case "vivaldi estimate symmetric" `Quick test_vivaldi_symmetric_estimate;
      Alcotest.test_case "gnp embeds euclidean" `Slow test_gnp_embeds_euclidean;
      Alcotest.test_case "gnp validation" `Quick test_gnp_validation;
      Alcotest.test_case "meridian rings" `Quick test_meridian_rings_well_formed;
      Alcotest.test_case "meridian search improves" `Quick test_meridian_search_improves_on_entry;
      Alcotest.test_case "meridian k-nearest" `Quick test_meridian_k_nearest_sane;
      Alcotest.test_case "meridian validation" `Quick test_meridian_validation;
    ] )
