(* Fault: scripted scenarios fire the right hooks at the right times. *)

open Simkit

let test_validation () =
  let bad name t =
    match Fault.validate t with
    | Ok () -> Alcotest.fail (name ^ ": expected a validation error")
    | Error _ -> ()
  in
  bad "negative time"
    { Fault.name = "x"; steps = [ { at = -1.0; action = Fault.Heal_partition } ] };
  bad "out of order"
    {
      Fault.name = "x";
      steps =
        [
          { at = 10.0; action = Fault.Heal_partition };
          { at = 5.0; action = Fault.Heal_partition };
        ];
    };
  bad "loss out of range" { Fault.name = "x"; steps = [ { at = 0.0; action = Fault.Set_loss 1.0 } ] };
  bad "negative replica"
    { Fault.name = "x"; steps = [ { at = 0.0; action = Fault.Crash_replica (-1) } ] };
  (match Fault.validate (Fault.crash_primary ~crash_at:100.0 ~recover_at:200.0 ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.check_raises "builder guards order"
    (Invalid_argument "Fault.crash_primary: recover_at <= crash_at") (fun () ->
      ignore (Fault.crash_primary ~crash_at:200.0 ~recover_at:100.0 ()))

let test_steps_fire_in_order () =
  let engine = Engine.create () in
  let events = ref [] in
  let record e = events := (Engine.now engine, e) :: !events in
  let scenario =
    {
      Fault.name = "script";
      steps =
        [
          { at = 100.0; action = Fault.Crash_replica 2 };
          { at = 250.0; action = Fault.Set_loss 0.3 };
          { at = 400.0; action = Fault.Partition [ 1; 2 ] };
          { at = 500.0; action = Fault.Heal_partition };
          { at = 600.0; action = Fault.Recover_replica 2 };
        ];
    }
  in
  Fault.install scenario ~engine
    ~hooks:
      {
        Fault.crash_replica = (fun i -> record (Printf.sprintf "crash %d" i));
        recover_replica = (fun i -> record (Printf.sprintf "recover %d" i));
        set_loss = (fun p -> record (Printf.sprintf "loss %.1f" p));
        partition = (fun nodes -> record (Printf.sprintf "cut %d" (List.length nodes)));
        heal_partition = (fun () -> record "heal");
      };
  Engine.run engine;
  Alcotest.(check (list (pair (float 1e-9) string)))
    "all steps at their times"
    [
      (100.0, "crash 2");
      (250.0, "loss 0.3");
      (400.0, "cut 2");
      (500.0, "heal");
      (600.0, "recover 2");
    ]
    (List.rev !events)

let test_loss_burst_drives_transport () =
  (* End to end through real hooks: messages sent inside the burst window
     are lossy, messages outside are not. *)
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let engine = Engine.create () in
  let rng = Prelude.Prng.create 9 in
  let transport = Transport.create ~rng engine oracle in
  Fault.install
    (Fault.loss_burst ~from_ms:1_000.0 ~until_ms:2_000.0 ~loss:0.9 ())
    ~engine
    ~hooks:{ Fault.null_hooks with set_loss = Transport.set_loss_prob transport };
  let delivered_in = ref 0 and delivered_out = ref 0 in
  for i = 0 to 49 do
    (* 50 messages inside the window, 50 after it closes. *)
    Engine.schedule_at engine ~time:(1_100.0 +. float_of_int i) (fun () ->
        Transport.send transport ~src:d.p1 ~dst:d.p2 ~size_bytes:10 (fun () ->
            incr delivered_in));
    Engine.schedule_at engine ~time:(2_100.0 +. float_of_int i) (fun () ->
        Transport.send transport ~src:d.p1 ~dst:d.p2 ~size_bytes:10 (fun () ->
            incr delivered_out))
  done;
  Engine.run engine;
  Alcotest.(check bool)
    (Printf.sprintf "burst window lossy (%d/50)" !delivered_in)
    true (!delivered_in < 25);
  Alcotest.(check int) "after the window, clean" 50 !delivered_out;
  Alcotest.(check (float 1e-9)) "loss restored" 0.0 (Transport.loss_prob transport)

let test_describe () =
  Alcotest.(check string) "empty" "none: no faults" (Fault.describe Fault.none);
  Alcotest.(check string)
    "crash-primary"
    "crash-primary: t=100 crash replica 0; t=300 recover replica 0"
    (Fault.describe (Fault.crash_primary ~crash_at:100.0 ~recover_at:300.0 ()))

let suite =
  ( "fault",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "steps fire in order" `Quick test_steps_fire_in_order;
      Alcotest.test_case "loss burst drives transport" `Quick test_loss_burst_drives_transport;
      Alcotest.test_case "describe" `Quick test_describe;
    ] )
