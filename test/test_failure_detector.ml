(* Failure_detector: detection latency, graceful leaves, false positives
   under message loss. *)

open Simkit

let setup ?rng ?loss_prob ~seed () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 300) ~seed in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let engine = Engine.create () in
  let transport = Transport.create ?rng ?loss_prob engine oracle in
  (map, engine, transport)

let config =
  { Failure_detector.heartbeat_period_ms = 100.0; timeout_ms = 350.0; heartbeat_bytes = 32 }

let test_create_validation () =
  let _, _, transport = setup ~seed:1 () in
  Alcotest.check_raises "period >= timeout"
    (Invalid_argument "Failure_detector.create: need 0 < period < timeout") (fun () ->
      ignore
        (Failure_detector.create
           { Failure_detector.heartbeat_period_ms = 10.0; timeout_ms = 5.0; heartbeat_bytes = 1 }
           ~transport ~monitor_router:0
           ~on_failure:(fun _ -> ())))

let test_live_peer_never_suspected () =
  let map, engine, transport = setup ~seed:2 () in
  let failures = ref [] in
  let d =
    Failure_detector.create config ~transport ~monitor_router:map.core.(0)
      ~on_failure:(fun p -> failures := p :: !failures)
  in
  Failure_detector.watch d ~peer:7 ~router:map.leaves.(0) ~alive:(fun () -> true);
  Engine.run ~until:5_000.0 engine;
  Alcotest.(check (list int)) "no failures" [] !failures;
  Alcotest.(check bool) "not suspected" false (Failure_detector.is_suspected d ~peer:7);
  Alcotest.(check int) "still watched" 1 (Failure_detector.watched_count d)

let test_crash_detected_within_latency_bound () =
  let map, engine, transport = setup ~seed:3 () in
  let detected_at = ref nan in
  let d =
    Failure_detector.create config ~transport ~monitor_router:map.core.(0)
      ~on_failure:(fun _ -> detected_at := Engine.now engine)
  in
  let crash_time = 1_000.0 in
  let alive () = Engine.now engine < crash_time in
  Failure_detector.watch d ~peer:1 ~router:map.leaves.(1) ~alive;
  Engine.run ~until:10_000.0 engine;
  Alcotest.(check bool) "detected" true (not (Float.is_nan !detected_at));
  Alcotest.(check bool)
    (Printf.sprintf "detected at %.0f, crash at %.0f" !detected_at crash_time)
    true
    (* No earlier than crash + (timeout - one period); no later than
       crash + timeout + one period + network slack. *)
    (!detected_at >= crash_time
    && !detected_at <= crash_time +. config.timeout_ms +. config.heartbeat_period_ms +. 100.0);
  Alcotest.(check bool) "marked suspected" true (Failure_detector.is_suspected d ~peer:1);
  Alcotest.(check int) "one suspicion" 1 (Failure_detector.suspicions d)

let test_graceful_unwatch_is_silent () =
  let map, engine, transport = setup ~seed:4 () in
  let failures = ref 0 in
  let d =
    Failure_detector.create config ~transport ~monitor_router:map.core.(0)
      ~on_failure:(fun _ -> incr failures)
  in
  let alive = ref true in
  Failure_detector.watch d ~peer:2 ~router:map.leaves.(2) ~alive:(fun () -> !alive);
  Engine.schedule engine ~delay:500.0 (fun () ->
      (* Leave gracefully: unwatch, then stop heartbeating. *)
      Failure_detector.unwatch d ~peer:2;
      alive := false);
  Engine.run ~until:5_000.0 engine;
  Alcotest.(check int) "no suspicion" 0 !failures;
  Alcotest.(check bool) "forgotten" false (Failure_detector.is_watched d ~peer:2);
  Failure_detector.unwatch d ~peer:2

let test_double_watch_rejected () =
  let map, _, transport = setup ~seed:5 () in
  let d =
    Failure_detector.create config ~transport ~monitor_router:map.core.(0) ~on_failure:(fun _ -> ())
  in
  Failure_detector.watch d ~peer:3 ~router:map.leaves.(3) ~alive:(fun () -> true);
  Alcotest.check_raises "double watch" (Invalid_argument "Failure_detector.watch: already watched")
    (fun () -> Failure_detector.watch d ~peer:3 ~router:map.leaves.(3) ~alive:(fun () -> true))

let test_loss_causes_false_positives () =
  (* With heavy loss and a timeout of 3.5 periods, runs of 3+ lost
     heartbeats happen and produce false suspicions of live peers — the
     accuracy cost the detector literature is about. *)
  let false_positives ~loss_prob ~seed =
    let rng = Prelude.Prng.create seed in
    let map, engine, transport = setup ~rng ~loss_prob ~seed () in
    let count = ref 0 in
    let d =
      Failure_detector.create config ~transport ~monitor_router:map.core.(0)
        ~on_failure:(fun _ -> incr count)
    in
    for peer = 0 to 19 do
      Failure_detector.watch d ~peer ~router:map.leaves.(peer) ~alive:(fun () -> true)
    done;
    Engine.run ~until:60_000.0 engine;
    !count
  in
  Alcotest.(check int) "no loss, no false positives" 0 (false_positives ~loss_prob:0.0 ~seed:6);
  let noisy = false_positives ~loss_prob:0.45 ~seed:7 in
  Alcotest.(check bool) (Printf.sprintf "heavy loss produces them (%d)" noisy) true (noisy > 0)

let test_rewatch_gets_fresh_silence_timer () =
  (* A crashed, suspected, then recovered-and-re-watched peer must start
     from a clean slate: if the new watch inherited the dead incarnation's
     silence timer it would be re-suspected instantly (the old deadline is
     long past).  The only allowed suspicion is the crash itself. *)
  let map, engine, transport = setup ~seed:8 () in
  let failures = ref 0 in
  let d =
    Failure_detector.create config ~transport ~monitor_router:map.core.(0)
      ~on_failure:(fun _ -> incr failures)
  in
  let alive = ref true in
  let watch () =
    Failure_detector.watch d ~peer:9 ~router:map.leaves.(9) ~alive:(fun () -> !alive)
  in
  watch ();
  Engine.schedule engine ~delay:500.0 (fun () -> alive := false);
  Engine.schedule engine ~delay:2_000.0 (fun () ->
      Alcotest.(check bool) "crash was detected first" true (Failure_detector.is_suspected d ~peer:9);
      alive := true;
      Failure_detector.unwatch d ~peer:9;
      watch ());
  Engine.run ~until:15_000.0 engine;
  Alcotest.(check int) "only the crash suspicion" 1 !failures;
  Alcotest.(check bool) "re-watched peer trusted" false (Failure_detector.is_suspected d ~peer:9);
  Alcotest.(check bool) "still watched" true (Failure_detector.is_watched d ~peer:9)

let suite =
  ( "failure_detector",
    [
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "live peer stays trusted" `Quick test_live_peer_never_suspected;
      Alcotest.test_case "crash detection latency" `Quick test_crash_detected_within_latency_bound;
      Alcotest.test_case "graceful unwatch" `Quick test_graceful_unwatch_is_silent;
      Alcotest.test_case "double watch rejected" `Quick test_double_watch_rejected;
      Alcotest.test_case "loss causes false positives" `Slow test_loss_causes_false_positives;
      Alcotest.test_case "re-watch resets silence timer" `Quick
        test_rewatch_gets_fresh_silence_timer;
    ] )
