(* Codec primitives and the protocol wire format. *)

open Prelude

(* --- Codec --- *)

let roundtrip_varint v =
  let w = Codec.Writer.create () in
  Codec.Writer.varint w v;
  match Codec.Reader.varint (Codec.Reader.of_string (Codec.Writer.contents w)) with
  | Ok v' -> v' = v
  | Error _ -> false

let test_varint_known () =
  let bytes_of v =
    let w = Codec.Writer.create () in
    Codec.Writer.varint w v;
    Codec.Writer.contents w
  in
  Alcotest.(check string) "0 is one byte" "\x00" (bytes_of 0);
  Alcotest.(check string) "127 fits one byte" "\x7f" (bytes_of 127);
  Alcotest.(check string) "128 takes two" "\x80\x01" (bytes_of 128);
  Alcotest.(check int) "300 encoding length" 2 (String.length (bytes_of 300));
  Alcotest.check_raises "negative" (Invalid_argument "Codec.Writer.varint: negative") (fun () ->
      ignore (bytes_of (-1)))

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound max_int)
    roundtrip_varint

let test_u8_bounds () =
  let w = Codec.Writer.create () in
  Alcotest.check_raises "256" (Invalid_argument "Codec.Writer.u8: outside [0, 255]") (fun () ->
      Codec.Writer.u8 w 256)

let test_bytes_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.bytes w "hello";
  Codec.Writer.bytes w "";
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check bool) "first" true (Codec.Reader.bytes r = Ok "hello");
  Alcotest.(check bool) "second empty" true (Codec.Reader.bytes r = Ok "");
  Alcotest.(check bool) "exhausted" true (Codec.Reader.is_exhausted r)

let test_reader_truncated () =
  let r = Codec.Reader.of_string "" in
  Alcotest.(check bool) "u8 on empty" true (Codec.Reader.u8 r = Error Codec.Reader.Truncated);
  (* Length prefix promising more than available. *)
  let w = Codec.Writer.create () in
  Codec.Writer.varint w 100;
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check bool) "bytes truncated" true (Codec.Reader.bytes r = Error Codec.Reader.Truncated)

let test_reader_malformed_varint () =
  (* Ten continuation bytes: longer than any 63-bit value. *)
  let r = Codec.Reader.of_string (String.make 10 '\xff') in
  match Codec.Reader.varint r with
  | Error (Codec.Reader.Malformed _) -> ()
  | Ok _ | Error Codec.Reader.Truncated -> Alcotest.fail "expected malformed"

(* The reader must reject varints whose VALUE cannot be represented, not
   just absurdly long encodings: 9 continuation bytes put the 10th byte's
   payload at bit 63, so anything above 0x3F there overflows OCaml's
   63-bit int. *)
let test_varint_overflow_edges () =
  let decode s = Codec.Reader.varint (Codec.Reader.of_string s) in
  let expect_malformed what s =
    match decode s with
    | Error (Codec.Reader.Malformed _) -> ()
    | Ok v -> Alcotest.fail (Printf.sprintf "%s decoded as %d" what v)
    | Error Codec.Reader.Truncated -> Alcotest.fail (what ^ " reported truncated")
  in
  (* max_int = 2^62 - 1 encodes as 8 continuation bytes + 0x3F: the largest
     legal varint, and it must round-trip. *)
  Alcotest.(check bool) "max_int roundtrips" true (roundtrip_varint max_int);
  (* Same length, final payload one past the top: 2^62 overflows. *)
  expect_malformed "2^62" (String.make 8 '\x80' ^ "\x40");
  (* An eleventh byte is past any 63-bit value no matter its payload. *)
  expect_malformed "10 continuation bytes" (String.make 10 '\xff');
  expect_malformed "over-long zero" (String.make 9 '\x80' ^ "\x01")

(* A multi-byte varint cut inside its continuation bytes is Truncated —
   the transport lost data — never Malformed, and never a value. *)
let test_varint_truncated_multibyte () =
  let expect_truncated what s =
    match Codec.Reader.varint (Codec.Reader.of_string s) with
    | Error Codec.Reader.Truncated -> ()
    | Ok v -> Alcotest.fail (Printf.sprintf "%s decoded as %d" what v)
    | Error (Codec.Reader.Malformed m) -> Alcotest.fail (what ^ " reported malformed: " ^ m)
  in
  expect_truncated "empty input" "";
  expect_truncated "lone continuation byte" "\x80";
  expect_truncated "three of four bytes" "\xff\xff\xff";
  expect_truncated "seven continuation bytes" (String.make 7 '\x80')

let test_bool_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.bool w true;
  Codec.Writer.bool w false;
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check bool) "true" true (Codec.Reader.bool r = Ok true);
  Alcotest.(check bool) "false" true (Codec.Reader.bool r = Ok false);
  let bad = Codec.Reader.of_string "\x07" in
  (match Codec.Reader.bool bad with
  | Error (Codec.Reader.Malformed _) -> ()
  | _ -> Alcotest.fail "expected malformed bool")

let test_list_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.list w (Codec.Writer.varint w) [ 1; 2; 300 ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check bool) "list" true (Codec.Reader.list r Codec.Reader.varint = Ok [ 1; 2; 300 ])

let test_list_absurd_count () =
  (* Count of 2^20 with a 2-byte body must be rejected before allocation. *)
  let w = Codec.Writer.create () in
  Codec.Writer.varint w (1 lsl 20);
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  match Codec.Reader.list r Codec.Reader.varint with
  | Error (Codec.Reader.Malformed _) -> ()
  | _ -> Alcotest.fail "expected malformed count"

(* --- Wire --- *)

open Nearby

let sample_messages =
  [
    Wire.Ping_request { nonce = 0 };
    Wire.Ping_reply { nonce = 123456 };
    Wire.Path_report
      {
        peer = 42;
        path =
          {
            Traceroute.Path.src = 7;
            dst = 99;
            hops = [| Traceroute.Path.Known 7; Traceroute.Path.Anonymous; Traceroute.Path.Known 99 |];
          };
      };
    Wire.Neighbor_request { peer = 3; k = 5 };
    Wire.Neighbor_reply { peer = 3; neighbors = [ (9, 4); (12, 6) ] };
    Wire.Neighbor_reply { peer = 0; neighbors = [] };
    Wire.Leave { peer = 77 };
    Wire.Path_report_batch { reports = [] };
    Wire.Path_report_batch
      {
        reports =
          [
            (3, { Traceroute.Path.src = 1; dst = 9; hops = [| Traceroute.Path.Known 9 |] });
            ( 4,
              {
                Traceroute.Path.src = 2;
                dst = 9;
                hops = [| Traceroute.Path.Anonymous; Traceroute.Path.Known 9 |];
              } );
          ];
      };
  ]

let test_wire_roundtrip () =
  List.iter
    (fun m ->
      match Wire.decode (Wire.encode m) with
      | Ok m' ->
          Alcotest.(check bool) (Format.asprintf "roundtrip %a" Wire.pp m) true (Wire.equal m m')
      | Error e -> Alcotest.fail e)
    sample_messages

let test_wire_every_truncation_fails_cleanly () =
  List.iter
    (fun m ->
      let encoded = Wire.encode m in
      for len = 0 to String.length encoded - 1 do
        match Wire.decode (String.sub encoded 0 len) with
        | Error _ -> ()
        | Ok m' ->
            Alcotest.fail
              (Format.asprintf "prefix %d of %a decoded as %a" len Wire.pp m Wire.pp m')
      done)
    sample_messages

let test_wire_trailing_garbage () =
  let encoded = Wire.encode (Wire.Leave { peer = 1 }) in
  match Wire.decode (encoded ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing byte accepted"

let test_wire_bad_version_and_tag () =
  (match Wire.decode "\x09\x00\x00" with
  | Error e -> Alcotest.(check bool) "version error mentioned" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "bad version accepted");
  match Wire.decode "\x01\x63\x00" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag accepted"

let test_wire_sizes_reasonable () =
  (* A 12-hop path report stays well under a typical MTU. *)
  let hops = Array.init 13 (fun i -> Traceroute.Path.Known (i * 17)) in
  let m = Wire.Path_report { peer = 1000; path = { Traceroute.Path.src = 0; dst = 204; hops } } in
  let size = Wire.byte_size m in
  Alcotest.(check bool) (Printf.sprintf "path report is %d bytes" size) true (size < 64);
  Alcotest.(check int) "size = encode length" (String.length (Wire.encode m)) size

let qcheck_wire_neighbor_reply_roundtrip =
  QCheck.Test.make ~name:"wire neighbor-reply roundtrip" ~count:300
    QCheck.(pair (int_bound 10000) (small_list (pair (int_bound 5000) (int_bound 64))))
    (fun (peer, neighbors) ->
      let m = Wire.Neighbor_reply { peer; neighbors } in
      match Wire.decode (Wire.encode m) with Ok m' -> Wire.equal m m' | Error _ -> false)

(* A batched fan-out must cost less than the reports shipped one message
   each — that is its reason to exist — and the allocation-free [byte_size]
   must agree with the bytes [encode] actually produces. *)
let test_wire_batch_beats_singletons () =
  let report i =
    ( 1000 + i,
      {
        Traceroute.Path.src = i;
        dst = 204;
        hops = Array.init 9 (fun h -> Traceroute.Path.Known ((h * 31) + i));
      } )
  in
  let reports = List.init 16 report in
  let batch = Wire.byte_size (Wire.Path_report_batch { reports }) in
  let singles =
    List.fold_left
      (fun acc (peer, path) -> acc + Wire.byte_size (Wire.Path_report { peer; path }))
      0 reports
  in
  Alcotest.(check bool)
    (Printf.sprintf "batch %dB < %dB singles" batch singles)
    true (batch < singles);
  match Wire.decode (Wire.encode (Wire.Path_report_batch { reports })) with
  | Ok m' -> Alcotest.(check bool) "batch roundtrip" true (Wire.equal (Wire.Path_report_batch { reports }) m')
  | Error e -> Alcotest.fail e

let gen_path =
  QCheck.Gen.(
    map3
      (fun src dst hops -> { Traceroute.Path.src; dst; hops = Array.of_list hops })
      (int_bound 5000) (int_bound 5000)
      (list_size (int_bound 12)
         (map
            (fun h -> if h = 0 then Traceroute.Path.Anonymous else Traceroute.Path.Known h)
            (int_bound 5000))))

let qcheck_wire_batch_size_exact =
  QCheck.Test.make ~name:"byte_size = encode length for report batches" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_bound 8) (pair (int_bound 10000) gen_path)))
    (fun reports ->
      let m = Wire.Path_report_batch { reports } in
      Wire.byte_size m = String.length (Wire.encode m)
      && match Wire.decode (Wire.encode m) with Ok m' -> Wire.equal m m' | Error _ -> false)

let qcheck_wire_decode_total =
  QCheck.Test.make ~name:"wire decode never raises on random bytes" ~count:500
    QCheck.(string_of_size Gen.(int_bound 40))
    (fun s ->
      match Wire.decode s with Ok _ -> true | Error _ -> true)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "wire",
    [
      Alcotest.test_case "varint known values" `Quick test_varint_known;
      q qcheck_varint_roundtrip;
      Alcotest.test_case "u8 bounds" `Quick test_u8_bounds;
      Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
      Alcotest.test_case "reader truncated" `Quick test_reader_truncated;
      Alcotest.test_case "malformed varint" `Quick test_reader_malformed_varint;
      Alcotest.test_case "varint overflow edges" `Quick test_varint_overflow_edges;
      Alcotest.test_case "varint truncated mid-encoding" `Quick test_varint_truncated_multibyte;
      Alcotest.test_case "bool roundtrip" `Quick test_bool_roundtrip;
      Alcotest.test_case "list roundtrip" `Quick test_list_roundtrip;
      Alcotest.test_case "absurd list count" `Quick test_list_absurd_count;
      Alcotest.test_case "message roundtrip" `Quick test_wire_roundtrip;
      Alcotest.test_case "all truncations rejected" `Quick test_wire_every_truncation_fails_cleanly;
      Alcotest.test_case "trailing garbage" `Quick test_wire_trailing_garbage;
      Alcotest.test_case "bad version/tag" `Quick test_wire_bad_version_and_tag;
      Alcotest.test_case "sizes reasonable" `Quick test_wire_sizes_reasonable;
      Alcotest.test_case "batch beats singleton reports" `Quick test_wire_batch_beats_singletons;
      q qcheck_wire_batch_size_exact;
      q qcheck_wire_neighbor_reply_roundtrip;
      q qcheck_wire_decode_total;
    ] )
