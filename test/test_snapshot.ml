(* Server snapshot / restore. *)

open Nearby

let fixture ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 400) ~seed in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let rng = Prelude.Prng.create seed in
  let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:4 ~rng in
  (map, oracle, landmarks)

let populated ~seed ~peers =
  let map, oracle, landmarks = fixture ~seed in
  let server = Server.create oracle ~landmarks in
  for peer = 0 to peers - 1 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer mod Array.length map.leaves))
  done;
  (map, oracle, server)

let test_roundtrip_preserves_answers () =
  let _, oracle, server = populated ~seed:1 ~peers:60 in
  let blob = Server.snapshot server in
  match Server.restore oracle blob with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      Server.check_invariants restored;
      Alcotest.(check int) "peer count" (Server.peer_count server) (Server.peer_count restored);
      Alcotest.(check (array int)) "landmarks" (Server.landmarks server) (Server.landmarks restored);
      for peer = 0 to 59 do
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "peer %d answers preserved" peer)
          (Server.neighbors server ~peer ~k:5)
          (Server.neighbors restored ~peer ~k:5)
      done

let test_restored_server_keeps_working () =
  let map, oracle, server = populated ~seed:2 ~peers:20 in
  match Server.restore oracle (Server.snapshot server) with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      (* New joins, leaves and handovers must work on the restored state. *)
      ignore (Server.join restored ~peer:100 ~attach_router:map.leaves.(30));
      Server.leave restored ~peer:0;
      ignore (Server.handover restored ~peer:1 ~attach_router:map.leaves.(31));
      Server.check_invariants restored;
      Alcotest.(check int) "population evolved" 20 (Server.peer_count restored);
      Alcotest.check_raises "old duplicate still rejected"
        (Invalid_argument "Server.join: peer already registered") (fun () ->
          ignore (Server.join restored ~peer:5 ~attach_router:map.leaves.(0)))

let test_snapshot_deterministic () =
  let _, _, server = populated ~seed:3 ~peers:25 in
  Alcotest.(check bool) "stable bytes" true (Server.snapshot server = Server.snapshot server)

let test_restore_rejects_corruption () =
  let _, oracle, server = populated ~seed:4 ~peers:10 in
  let blob = Server.snapshot server in
  (* Every strict prefix must fail cleanly. *)
  let rejected = ref 0 in
  for len = 0 to String.length blob - 1 do
    match Server.restore oracle (String.sub blob 0 len) with
    | Error _ -> incr rejected
    | Ok _ -> ()
  done;
  Alcotest.(check int) "all prefixes rejected" (String.length blob) !rejected;
  (match Server.restore oracle (blob ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Server.restore oracle "\x09garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad version accepted"

let test_restore_empty_server () =
  let _, oracle, landmarks = fixture ~seed:5 in
  let server = Server.create oracle ~landmarks in
  match Server.restore oracle (Server.snapshot server) with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      Alcotest.(check int) "empty" 0 (Server.peer_count restored);
      Alcotest.(check (array int)) "landmarks kept" landmarks (Server.landmarks restored)

let suite =
  ( "snapshot",
    [
      Alcotest.test_case "roundtrip preserves answers" `Quick test_roundtrip_preserves_answers;
      Alcotest.test_case "restored server works" `Quick test_restored_server_keeps_working;
      Alcotest.test_case "deterministic bytes" `Quick test_snapshot_deterministic;
      Alcotest.test_case "corruption rejected" `Quick test_restore_rejects_corruption;
      Alcotest.test_case "empty roundtrip" `Quick test_restore_empty_server;
    ] )
