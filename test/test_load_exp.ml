(* Load_exp: the flash-crowd headline (SLO shedding holds admitted p99,
   drop-tail does not), churn/mobility composition, and the JSON shape. *)

let base_config =
  {
    Eval.Load_exp.default_config with
    routers = 400;
    arrival =
      Simkit.Workload.Flash
        { base_per_s = 25.0; spike_per_s = 200.0; spike_at_s = 500.0 /. 1000.0; spike_len_s = 2.0 };
    duration_ms = 4_000.0;
    service_rate_per_s = 100.0;
    batch = 8;
    queue_cap = 150;
    seed = 42;
  }

let run policy = Eval.Load_exp.run { base_config with policy }

let test_headline_slo_vs_drop_tail () =
  let slo = run "slo" and drop = run "drop-tail" in
  (* Both policies complete every admitted request — shedding happens at
     the front door, never after admission. *)
  Alcotest.(check (float 1e-9)) "slo completes admitted" 1.0 slo.Eval.Load_exp.completion_rate;
  Alcotest.(check (float 1e-9)) "drop-tail completes admitted" 1.0
    drop.Eval.Load_exp.completion_rate;
  Alcotest.(check bool) "both make progress" true
    (slo.Eval.Load_exp.goodput_per_s > 0.0 && drop.Eval.Load_exp.goodput_per_s > 0.0);
  (* The headline: at 2x saturation the shedder holds the admitted-join
     p99 inside the budget; drop-tail's p99 is the full queue-drain time
     (cap / service = 3 s here) and blows through it. *)
  Alcotest.(check bool) "saturated" true (slo.Eval.Load_exp.saturation >= 1.5);
  Alcotest.(check bool) "slo p99 within budget" true slo.Eval.Load_exp.p99_within_budget;
  Alcotest.(check bool) "drop-tail p99 busts the budget" false
    drop.Eval.Load_exp.p99_within_budget;
  Alcotest.(check bool) "slo tail beats drop-tail tail" true
    (slo.Eval.Load_exp.join_p99_ms < drop.Eval.Load_exp.join_p99_ms);
  Alcotest.(check bool) "the shedder actually opened" true
    (slo.Eval.Load_exp.slo_sheds_opened >= 1);
  Alcotest.(check bool) "slo sheds carry the slo reason" true
    (match List.assoc_opt "slo" slo.Eval.Load_exp.shed with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "drop-tail sheds at the full queue" true
    (match List.assoc_opt "queue_full" drop.Eval.Load_exp.shed with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check bool) "shed fraction consistent" true
    (slo.Eval.Load_exp.shed_fraction > 0.0 && slo.Eval.Load_exp.shed_fraction < 1.0)

let test_deadline_policy () =
  let r = run "deadline" in
  Alcotest.(check (float 1e-9)) "completes admitted" 1.0 r.Eval.Load_exp.completion_rate;
  (* Deadline expiry bounds the served wait: p99 wait <= the 0.8 * budget
     default bound (expired requests are shed, not served late). *)
  Alcotest.(check bool) "deadline sheds" true
    (match List.assoc_opt "deadline" r.Eval.Load_exp.shed with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "served waits bounded by the deadline" true
    (r.Eval.Load_exp.wait_p99_ms <= 0.8 *. r.Eval.Load_exp.slo_budget_ms +. 1e-6)

let test_determinism () =
  let a = Eval.Load_exp.run { base_config with policy = "slo" } in
  let b = Eval.Load_exp.run { base_config with policy = "slo" } in
  Alcotest.(check string) "same seed, same result"
    (Eval.Load_exp.result_json a) (Eval.Load_exp.result_json b);
  let c = Eval.Load_exp.run { base_config with policy = "slo"; seed = 43 } in
  Alcotest.(check bool) "different seed differs" true
    (Eval.Load_exp.result_json a <> Eval.Load_exp.result_json c)

let test_churn_and_mobility () =
  let config =
    {
      base_config with
      arrival = Simkit.Workload.Poisson { rate_per_s = 40.0 };
      duration_ms = 5_000.0;
      churn =
        {
          Simkit.Workload.session = Some (Simkit.Churn.Exponential { mean_ms = 1_200.0 });
          mobility_fraction = 0.5;
        };
      seed = 7;
    }
  in
  let r = Eval.Load_exp.run config in
  Alcotest.(check (float 1e-9)) "completes admitted" 1.0 r.Eval.Load_exp.completion_rate;
  Alcotest.(check bool) "graceful leaves happened" true (r.Eval.Load_exp.leaves > 0);
  Alcotest.(check bool) "regional handovers happened" true (r.Eval.Load_exp.handovers > 0);
  (* A handover re-joins through the same admission queue. *)
  Alcotest.(check bool) "handovers re-submit" true
    (r.Eval.Load_exp.submitted > r.Eval.Load_exp.offered);
  Alcotest.(check bool) "registry retains the survivors" true (r.Eval.Load_exp.final_peers > 0)

let test_result_json_shape () =
  let r = run "slo" in
  let json = Simkit.Json.parse_exn (Eval.Load_exp.result_json r) in
  let get conv key =
    match Option.bind (Simkit.Json.path [ key ] json) conv with
    | Some v -> v
    | None -> Alcotest.fail (Printf.sprintf "missing or mistyped field %S" key)
  in
  Alcotest.(check string) "arrival" "flash" (get Simkit.Json.to_string "arrival");
  Alcotest.(check string) "policy" "slo" (get Simkit.Json.to_string "policy");
  Alcotest.(check (float 1e-6)) "submitted round-trips" (float_of_int r.Eval.Load_exp.submitted)
    (get Simkit.Json.to_float "submitted");
  Alcotest.(check (float 0.01)) "join p99 round-trips" r.Eval.Load_exp.join_p99_ms
    (get Simkit.Json.to_float "join_p99_ms");
  Alcotest.(check bool) "headline flag present" true (get Simkit.Json.to_bool "p99_within_budget");
  (* shed serializes as an object keyed by reason. *)
  match Option.bind (Simkit.Json.path [ "shed"; "slo" ] json) Simkit.Json.to_float with
  | Some n -> Alcotest.(check bool) "shed breakdown present" true (n > 0.0)
  | None -> Alcotest.fail "shed.slo missing from result json"

let test_instrumented_artifacts () =
  let r, art = Eval.Load_exp.run_instrumented { base_config with policy = "slo" } in
  let totals = art.Eval.Load_exp.totals in
  Alcotest.(check int) "totals agree on submissions" r.Eval.Load_exp.submitted
    totals.Nearby.Admission.submitted;
  Alcotest.(check int) "totals agree on sheds"
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Eval.Load_exp.shed)
    totals.Nearby.Admission.shed_total;
  Alcotest.(check bool) "labeled shed counter matches" true
    (Simkit.Metrics.counter art.Eval.Load_exp.metrics "admission_shed_total"
       ~labels:[ ("reason", "slo") ]
    > 0);
  Alcotest.(check bool) "windowed queue depth recorded" true
    (List.mem Nearby.Admission.depth_series_name
       (Simkit.Timeseries.names art.Eval.Load_exp.timeseries));
  let sheds =
    List.filter
      (fun (e : Simkit.Flight_recorder.event) -> e.kind = "admission")
      (Simkit.Flight_recorder.events art.Eval.Load_exp.recorder)
  in
  Alcotest.(check bool) "flight recorder saw the shed" true (sheds <> [])

let test_scale_smoke () =
  (* ~10k arrivals under-saturation: a healthy fleet sheds nothing and the
     memoized measurement path keeps this fast. *)
  let config =
    {
      base_config with
      arrival = Simkit.Workload.Poisson { rate_per_s = 2_000.0 };
      duration_ms = 5_000.0;
      service_rate_per_s = 3_000.0;
      batch = 64;
      queue_cap = 4_000;
      policy = "slo";
      seed = 3;
    }
  in
  let r = Eval.Load_exp.run config in
  Alcotest.(check bool) "ten thousand arrivals" true (r.Eval.Load_exp.offered > 9_000);
  Alcotest.(check int) "healthy fleet sheds nothing" 0
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Eval.Load_exp.shed);
  Alcotest.(check (float 1e-9)) "all complete" 1.0 r.Eval.Load_exp.completion_rate;
  Alcotest.(check bool) "p99 within budget" true r.Eval.Load_exp.p99_within_budget

let suite =
  ( "load_exp",
    [
      Alcotest.test_case "slo vs drop-tail headline" `Slow test_headline_slo_vs_drop_tail;
      Alcotest.test_case "deadline policy" `Slow test_deadline_policy;
      Alcotest.test_case "deterministic in seed" `Slow test_determinism;
      Alcotest.test_case "churn and mobility" `Slow test_churn_and_mobility;
      Alcotest.test_case "result json shape" `Slow test_result_json_shape;
      Alcotest.test_case "instrumented artifacts" `Slow test_instrumented_artifacts;
      Alcotest.test_case "scale smoke" `Slow test_scale_smoke;
    ] )
