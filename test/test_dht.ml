(* Chord ring and the distributed directory. *)

open Dht

let members n = Array.init n (fun i -> 1000 + (i * 7))

let test_build_and_invariants () =
  let ring = Chord.build (members 32) in
  Alcotest.(check int) "member count" 32 (Chord.member_count ring);
  Chord.check_invariants ring;
  let ms = Chord.members ring in
  let sorted = Array.copy ms in
  Array.sort compare sorted;
  Alcotest.(check int) "all members present" 32 (Array.length (Array.of_list (List.sort_uniq compare (Array.to_list ms))))

let test_build_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Chord.build: no members") (fun () ->
      ignore (Chord.build [||]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Chord.build: duplicate member") (fun () ->
      ignore (Chord.build [| 1; 1 |]))

let test_lookup_finds_owner () =
  let ring = Chord.build (members 64) in
  let ms = Chord.members ring in
  for key = 0 to 200 do
    let owner = Chord.owner_of ring ~key in
    Array.iter
      (fun from ->
        let found, hops = Chord.lookup ring ~from ~key in
        Alcotest.(check int) (Printf.sprintf "key %d from %d" key from) owner found;
        Alcotest.(check bool) "hops bounded" true (hops >= 0 && hops <= 64))
      (Array.sub ms 0 8)
  done

let test_lookup_from_owner_is_free () =
  let ring = Chord.build (members 16) in
  for key = 0 to 50 do
    let owner = Chord.owner_of ring ~key in
    let _, hops = Chord.lookup ring ~from:owner ~key in
    Alcotest.(check int) "zero hops at the owner" 0 hops
  done

let test_lookup_unknown_member () =
  let ring = Chord.build (members 4) in
  Alcotest.check_raises "unknown" (Invalid_argument "Chord.lookup: unknown member") (fun () ->
      ignore (Chord.lookup ring ~from:999_999 ~key:3))

let test_lookup_hops_logarithmic () =
  (* Mean lookup hops must grow like log N: going 16 -> 256 members (16x)
     should far less than 16x the hops. *)
  let mean_hops n =
    let ring = Chord.build (members n) in
    let ms = Chord.members ring in
    let total = ref 0 and count = ref 0 in
    for key = 0 to 299 do
      let from = ms.(key mod n) in
      let _, hops = Chord.lookup ring ~from ~key:(key * 131) in
      total := !total + hops;
      incr count
    done;
    float_of_int !total /. float_of_int !count
  in
  let small = mean_hops 16 and large = mean_hops 256 in
  Alcotest.(check bool)
    (Printf.sprintf "hops scale gently (%.2f -> %.2f)" small large)
    true
    (large < 4.0 *. small && large < 10.0)

let test_hash_deterministic () =
  Alcotest.(check int) "stable" (Chord.hash_key 42) (Chord.hash_key 42);
  Alcotest.(check bool) "distinct keys usually differ" true (Chord.hash_key 1 <> Chord.hash_key 2)

(* --- Directory --- *)

let lmk = 77

let sample_paths = [ (0, [| 10; 11; 3; 2; lmk |]); (1, [| 20; 21; 3; 2; lmk |]); (2, [| 30; 2; lmk |]) ]

let populated_directory () =
  let d = Directory.create ~landmark:lmk (members 8) in
  List.iter (fun (peer, routers) -> Directory.insert d ~peer ~routers) sample_paths;
  d

let test_directory_matches_path_tree () =
  let d = populated_directory () in
  let tree = Nearby.Path_tree.create ~landmark:lmk in
  List.iter (fun (peer, routers) -> Nearby.Path_tree.insert tree ~peer ~routers) sample_paths;
  for peer = 0 to 2 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "peer %d identical answers" peer)
      (Nearby.Path_tree.query_member tree ~peer ~k:5)
      (Directory.query_member d ~peer ~k:5)
  done

let test_directory_random_equivalence () =
  (* Random sink-tree workload: the DHT directory must answer exactly like
     the in-memory tree. *)
  let rng = Prelude.Prng.create 5 in
  let n_routers = 40 in
  let parent = Array.init n_routers (fun r -> if r = 0 then -1 else Prelude.Prng.int rng r) in
  let path_from r =
    let rec climb r acc = if r = 0 then List.rev (0 :: acc) else climb parent.(r) (r :: acc) in
    Array.of_list (climb r [])
  in
  let d = Directory.create ~landmark:0 (members 12) in
  let tree = Nearby.Path_tree.create ~landmark:0 in
  for peer = 0 to 59 do
    let path = path_from (Prelude.Prng.int rng n_routers) in
    Directory.insert d ~peer ~routers:path;
    Nearby.Path_tree.insert tree ~peer ~routers:path
  done;
  for trial = 0 to 39 do
    let q = path_from (Prelude.Prng.int rng n_routers) in
    let k = 1 + (trial mod 6) in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "trial %d" trial)
      (Nearby.Path_tree.query tree ~routers:q ~k ())
      (Directory.query d ~routers:q ~k ())
  done

let test_directory_remove () =
  let d = populated_directory () in
  Directory.remove d ~peer:1;
  Alcotest.(check int) "members" 2 (Directory.member_count d);
  Alcotest.(check bool) "gone from answers" true
    (List.for_all (fun (p, _) -> p <> 1) (Directory.query_member d ~peer:0 ~k:5));
  Alcotest.check_raises "double remove" Not_found (fun () -> Directory.remove d ~peer:1)

let test_directory_stats () =
  let d = populated_directory () in
  Directory.reset_counters d;
  ignore (Directory.query_member d ~peer:0 ~k:5);
  let stats = Directory.stats d in
  Alcotest.(check bool) "lookups counted" true (stats.lookups > 0);
  Alcotest.(check bool) "hops accounted" true (stats.overlay_hops >= 0);
  Alcotest.(check int) "one balance row per node" 8 (List.length stats.buckets_per_node);
  let total_buckets = List.fold_left (fun acc (_, b) -> acc + b) 0 stats.buckets_per_node in
  (* Distinct routers across the three registered paths. *)
  Alcotest.(check int) "buckets cover the routers" 8 total_buckets

(* --- Kademlia --- *)

let test_kademlia_build_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Kademlia.build: no members") (fun () ->
      ignore (Kademlia.build [||]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Kademlia.build: duplicate member") (fun () ->
      ignore (Kademlia.build [| 4; 4 |]));
  Alcotest.check_raises "bucket size" (Invalid_argument "Kademlia.build: bucket_size must be >= 1")
    (fun () -> ignore (Kademlia.build ~bucket_size:0 (members 4)))

let test_kademlia_invariants () =
  let t = Kademlia.build ~bucket_size:3 (members 50) in
  Kademlia.check_invariants t;
  Alcotest.(check int) "member count" 50 (Kademlia.member_count t);
  Array.iter
    (fun m ->
      for i = 0 to 31 do
        Alcotest.(check bool) "bucket bounded" true
          (List.length (Kademlia.bucket_of t ~member:m ~index:i) <= 3)
      done)
    (Array.sub (Kademlia.members t) 0 5)

let test_kademlia_lookup_finds_owner () =
  let t = Kademlia.build ~bucket_size:4 (members 80) in
  let ms = Kademlia.members t in
  for key = 0 to 150 do
    let owner = Kademlia.owner_of t ~key in
    Array.iter
      (fun from ->
        let found, hops = Kademlia.lookup t ~from ~key in
        Alcotest.(check int) (Printf.sprintf "key %d from %d" key from) owner found;
        Alcotest.(check bool) "hops small" true (hops <= 32))
      (Array.sub ms 0 6)
  done

let test_kademlia_owner_lookup_free () =
  let t = Kademlia.build (members 20) in
  for key = 0 to 40 do
    let owner = Kademlia.owner_of t ~key in
    let _, hops = Kademlia.lookup t ~from:owner ~key in
    Alcotest.(check int) "zero hops at owner" 0 hops
  done

let test_kademlia_vs_chord_consistent () =
  (* Different metrics may pick different owners; each must be internally
     consistent from every starting member. *)
  let m = members 30 in
  let chord = Chord.build m and kad = Kademlia.build m in
  for key = 0 to 60 do
    let co = Chord.owner_of chord ~key and ko = Kademlia.owner_of kad ~key in
    Array.iter
      (fun from ->
        Alcotest.(check int) "chord consistent" co (fst (Chord.lookup chord ~from ~key));
        Alcotest.(check int) "kademlia consistent" ko (fst (Kademlia.lookup kad ~from ~key)))
      (Array.sub m 0 4)
  done

let test_membership_dynamics () =
  (* Random sink-tree workload; answers must be identical across node
     joins and leaves, and migrations must stay near the K/N consistent-
     hashing bound. *)
  let rng = Prelude.Prng.create 9 in
  let n_routers = 60 in
  let parent = Array.init n_routers (fun r -> if r = 0 then -1 else Prelude.Prng.int rng r) in
  let path_from r =
    let rec climb r acc = if r = 0 then List.rev (0 :: acc) else climb parent.(r) (r :: acc) in
    Array.of_list (climb r [])
  in
  let d = Directory.create ~landmark:0 (members 10) in
  for peer = 0 to 79 do
    Directory.insert d ~peer ~routers:(path_from (Prelude.Prng.int rng n_routers))
  done;
  let reference = List.init 80 (fun peer -> Directory.query_member d ~peer ~k:4) in
  let total_buckets =
    List.fold_left (fun acc (_, b) -> acc + b) 0 (Directory.stats d).buckets_per_node
  in
  (* Join a node: answers unchanged, migration below ~3x the fair share. *)
  let moved_in = Directory.add_node d ~node:555_000 in
  Alcotest.(check int) "node joined" 11 (Directory.node_count d);
  Alcotest.(check bool)
    (Printf.sprintf "join moved %d of %d buckets" moved_in total_buckets)
    true
    (moved_in <= 3 * total_buckets / 10);
  List.iteri
    (fun peer expected ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "peer %d after join" peer)
        expected
        (Directory.query_member d ~peer ~k:4))
    reference;
  (* Leave: same checks. *)
  let moved_out = Directory.remove_node d ~node:555_000 in
  Alcotest.(check int) "node left" 10 (Directory.node_count d);
  Alcotest.(check int) "leave undoes the join's share" moved_in moved_out;
  List.iteri
    (fun peer expected ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "peer %d after leave" peer)
        expected
        (Directory.query_member d ~peer ~k:4))
    reference;
  Alcotest.(check int) "migrations accumulated" (moved_in + moved_out) (Directory.migrations d);
  Alcotest.check_raises "duplicate join" (Invalid_argument "Directory.add_node: already a member")
    (fun () -> ignore (Directory.add_node d ~node:(members 10).(0)));
  Alcotest.check_raises "unknown leave" (Invalid_argument "Directory.remove_node: not a member")
    (fun () -> ignore (Directory.remove_node d ~node:424242))

let test_dht_exp_smoke () =
  let report =
    Eval.Dht_exp.run
      { Eval.Dht_exp.routers = 400; peers = 60; landmark_count = 3; dht_nodes = 8; virtual_nodes = 4; k = 4; seed = 1 }
  in
  Alcotest.(check bool) "answers identical" true report.answers_identical;
  Alcotest.(check bool) "lookups per join = path length-ish" true
    (report.mean_lookups_per_join > 2.0 && report.mean_lookups_per_join < 20.0);
  Alcotest.(check bool) "hops bounded by ring size" true
    (report.mean_hops_per_lookup >= 0.0 && report.mean_hops_per_lookup <= 8.0);
  Alcotest.(check bool) "balance >= 1" true (report.bucket_balance >= 1.0)

let suite =
  ( "dht",
    [
      Alcotest.test_case "build + invariants" `Quick test_build_and_invariants;
      Alcotest.test_case "build validation" `Quick test_build_validation;
      Alcotest.test_case "lookup finds owner" `Quick test_lookup_finds_owner;
      Alcotest.test_case "owner lookup free" `Quick test_lookup_from_owner_is_free;
      Alcotest.test_case "lookup unknown member" `Quick test_lookup_unknown_member;
      Alcotest.test_case "hops logarithmic" `Slow test_lookup_hops_logarithmic;
      Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
      Alcotest.test_case "directory = path tree (fixture)" `Quick test_directory_matches_path_tree;
      Alcotest.test_case "directory = path tree (random)" `Quick test_directory_random_equivalence;
      Alcotest.test_case "directory remove" `Quick test_directory_remove;
      Alcotest.test_case "directory stats" `Quick test_directory_stats;
      Alcotest.test_case "kademlia validation" `Quick test_kademlia_build_validation;
      Alcotest.test_case "kademlia invariants" `Quick test_kademlia_invariants;
      Alcotest.test_case "kademlia lookup" `Quick test_kademlia_lookup_finds_owner;
      Alcotest.test_case "kademlia owner free" `Quick test_kademlia_owner_lookup_free;
      Alcotest.test_case "kademlia vs chord consistency" `Quick test_kademlia_vs_chord_consistent;
      Alcotest.test_case "membership dynamics" `Quick test_membership_dynamics;
      Alcotest.test_case "dht experiment" `Slow test_dht_exp_smoke;
    ] )
