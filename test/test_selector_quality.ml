(* Selector strategies, Quality metrics, Measure scoring. *)

open Nearby

let small_context ~peers ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 400) ~seed in
  let rng = Prelude.Prng.create (seed + 1000) in
  let peer_routers =
    Array.init peers (fun _ -> map.leaves.(Prelude.Prng.int rng (Array.length map.leaves)))
  in
  let ctx = Selector.make_context map.graph ~peer_routers in
  let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:4 ~rng in
  (ctx, landmarks, rng)

let check_valid_sets ~n ~k sets =
  Alcotest.(check int) "one set per peer" n (Array.length sets);
  Array.iteri
    (fun peer set ->
      Alcotest.(check bool) "at most k" true (Array.length set <= k);
      Alcotest.(check bool) "exactly k for this population" true (Array.length set = min k (n - 1));
      Array.iter
        (fun j ->
          Alcotest.(check bool) "valid id" true (j >= 0 && j < n);
          Alcotest.(check bool) "not self" true (j <> peer))
        set;
      let sorted = List.sort_uniq compare (Array.to_list set) in
      Alcotest.(check int) "distinct" (Array.length set) (List.length sorted))
    sets

let test_all_strategies_produce_valid_sets () =
  let ctx, landmarks, rng = small_context ~peers:30 ~seed:1 in
  let k = 5 in
  List.iter
    (fun strategy ->
      let sets = Selector.select ctx strategy ~k ~rng in
      check_valid_sets ~n:30 ~k sets)
    [
      Selector.Proposed { landmarks; truncate = Traceroute.Truncate.Full };
      Selector.Random_peers;
      Selector.Oracle_closest;
      Selector.Vivaldi_rounds { rounds = 3; params = Coord.Vivaldi.default_params };
      Selector.Gnp_landmarks { landmarks; dims = 2 };
    ]

let test_strategy_names () =
  Alcotest.(check string) "random" "random" (Selector.strategy_name Selector.Random_peers);
  Alcotest.(check string) "closest" "closest" (Selector.strategy_name Selector.Oracle_closest);
  Alcotest.(check string) "vivaldi" "vivaldi-7r"
    (Selector.strategy_name (Selector.Vivaldi_rounds { rounds = 7; params = Coord.Vivaldi.default_params }))

let test_oracle_sets_are_optimal () =
  let ctx, _, _ = small_context ~peers:25 ~seed:2 in
  let k = 4 in
  let sets = Selector.oracle_distance_sets ctx ~k in
  (* For each peer, no non-chosen peer may be strictly closer than a chosen
     one. *)
  Array.iteri
    (fun peer set ->
      let dist = Topology.Bfs.distances ctx.graph ctx.peer_routers.(peer) in
      let d j = dist.(ctx.peer_routers.(j)) in
      let worst_chosen = Array.fold_left (fun acc j -> max acc (d j)) 0 set in
      for j = 0 to 24 do
        if j <> peer && not (Array.mem j set) then
          Alcotest.(check bool) "unchosen not closer" true (d j >= worst_chosen)
      done)
    sets

let test_small_population_smaller_sets () =
  let ctx, _, rng = small_context ~peers:3 ~seed:3 in
  let sets = Selector.select ctx Selector.Random_peers ~k:10 ~rng in
  Array.iter (fun set -> Alcotest.(check int) "only 2 others exist" 2 (Array.length set)) sets

let test_measure_oracle_ratio_is_one () =
  let ctx, _, _ = small_context ~peers:20 ~seed:4 in
  let k = 3 in
  let optimal = Selector.oracle_distance_sets ctx ~k in
  let outcome = Eval.Measure.score ctx ~k ~named_sets:[ ("opt", optimal) ] in
  match outcome.scored with
  | [ s ] ->
      Alcotest.(check (float 1e-9)) "ratio 1" 1.0 s.ratio;
      Alcotest.(check (float 1e-9)) "hit ratio 1" 1.0 s.hit_ratio;
      Alcotest.(check int) "same totals" outcome.total_d_closest s.total_d
  | _ -> Alcotest.fail "one scored entry expected"

let test_measure_ratios_ordered () =
  let ctx, landmarks, rng = small_context ~peers:60 ~seed:5 in
  let k = 5 in
  let proposed =
    Selector.select ctx (Selector.Proposed { landmarks; truncate = Traceroute.Truncate.Full }) ~k ~rng
  in
  let random = Selector.select ctx Selector.Random_peers ~k ~rng in
  let outcome = Eval.Measure.score ctx ~k ~named_sets:[ ("p", proposed); ("r", random) ] in
  match outcome.scored with
  | [ p; r ] ->
      Alcotest.(check bool) "proposed >= 1" true (p.ratio >= 1.0);
      Alcotest.(check bool) "random >= 1" true (r.ratio >= 1.0);
      Alcotest.(check bool)
        (Printf.sprintf "proposed (%.3f) beats random (%.3f)" p.ratio r.ratio)
        true (p.ratio < r.ratio);
      Alcotest.(check bool) "proposed hits more optimal peers" true (p.hit_ratio > r.hit_ratio)
  | _ -> Alcotest.fail "two scored entries expected"

let test_measure_validation () =
  let ctx, _, _ = small_context ~peers:5 ~seed:6 in
  Alcotest.check_raises "wrong set count"
    (Invalid_argument "Measure.score: selector \"x\" has 2 sets for 5 peers") (fun () ->
      ignore (Eval.Measure.score ctx ~k:2 ~named_sets:[ ("x", [| [||]; [||] |]) ]))

let test_quality_evaluate () =
  let ctx, _, _ = small_context ~peers:15 ~seed:7 in
  let k = 3 in
  let optimal = Selector.oracle_distance_sets ctx ~k in
  let report = Quality.evaluate ctx optimal in
  Alcotest.(check (float 1e-9)) "optimal per-peer ratio" 1.0 report.mean_per_peer_ratio;
  Alcotest.(check (float 1e-9)) "optimal hit ratio" 1.0 report.hit_ratio;
  Alcotest.(check bool) "mean distance positive" true (report.mean_neighbor_distance > 0.0);
  Alcotest.(check bool) "total consistent" true
    (abs_float (report.mean_d -. (float_of_int report.total_d /. 15.0)) < 1e-9)

let test_quality_ratio_vs () =
  let ctx, _, rng = small_context ~peers:20 ~seed:8 in
  let k = 3 in
  let optimal = Selector.oracle_distance_sets ctx ~k in
  let random = Selector.select ctx Selector.Random_peers ~k ~rng in
  let r = Quality.ratio_vs ctx ~chosen:random ~optimal in
  Alcotest.(check bool) "ratio >= 1" true (r >= 1.0);
  Alcotest.(check (float 1e-9)) "self ratio" 1.0 (Quality.ratio_vs ctx ~chosen:optimal ~optimal)

let test_quality_distance_helpers () =
  let ctx, _, _ = small_context ~peers:10 ~seed:9 in
  let d = Quality.distance_to_peers ctx ~peer:0 in
  Alcotest.(check int) "self distance" 0 d.(0);
  Alcotest.(check int) "vector length" 10 (Array.length d);
  let set = [| 1; 2 |] in
  Alcotest.(check int) "d_of_set sums" (d.(1) + d.(2)) (Quality.d_of_set ctx ~peer:0 set)

let test_hit_ratio_vs () =
  let chosen = [| [| 1; 2 |]; [| 0; 3 |] |] in
  let optimal = [| [| 1; 3 |]; [| 0; 3 |] |] in
  Alcotest.(check (float 1e-9)) "half + full / 2" 0.75 (Quality.hit_ratio_vs ~chosen ~optimal)

let test_hybrid_composition () =
  let ctx, landmarks, rng = small_context ~peers:30 ~seed:15 in
  let k = 5 and random_links = 2 in
  let hybrid =
    Selector.select ctx
      (Selector.Hybrid
         {
           primary = Selector.Proposed { landmarks; truncate = Traceroute.Truncate.Full };
           random_links;
         })
      ~k ~rng
  in
  check_valid_sets ~n:30 ~k hybrid;
  Array.iter (fun set -> Alcotest.(check int) "full size" k (Array.length set)) hybrid;
  Alcotest.check_raises "random_links > k"
    (Invalid_argument "Selector.select: random_links must be in [0, k]") (fun () ->
      ignore
        (Selector.select ctx
           (Selector.Hybrid { primary = Selector.Random_peers; random_links = 9 })
           ~k:3 ~rng))

let test_meridian_selector () =
  let ctx, _, rng = small_context ~peers:25 ~seed:16 in
  let sets =
    Selector.select ctx (Selector.Meridian_rings { params = Coord.Meridian.default_params }) ~k:4
      ~rng
  in
  Alcotest.(check int) "one set per peer" 25 (Array.length sets);
  Array.iteri
    (fun peer set ->
      Alcotest.(check bool) "bounded" true (Array.length set <= 4);
      Array.iter (fun j -> Alcotest.(check bool) "not self" true (j <> peer)) set)
    sets;
  (* Meridian should land closer than random on average. *)
  let random = Selector.select ctx Selector.Random_peers ~k:4 ~rng in
  let outcome = Eval.Measure.score ctx ~k:4 ~named_sets:[ ("m", sets); ("r", random) ] in
  match outcome.scored with
  | [ m; r ] ->
      Alcotest.(check bool)
        (Printf.sprintf "meridian %.3f <= random %.3f + slack" m.ratio r.ratio)
        true
        (m.ratio <= r.ratio +. 0.15)
  | _ -> Alcotest.fail "two entries expected"

let test_proposed_beats_random_consistently () =
  (* The fig2 claim at miniature scale, across several seeds. *)
  let wins = ref 0 in
  for seed = 10 to 14 do
    let ctx, landmarks, rng = small_context ~peers:40 ~seed in
    let k = 4 in
    let proposed =
      Selector.select ctx (Selector.Proposed { landmarks; truncate = Traceroute.Truncate.Full }) ~k ~rng
    in
    let random = Selector.select ctx Selector.Random_peers ~k ~rng in
    let outcome = Eval.Measure.score ctx ~k ~named_sets:[ ("p", proposed); ("r", random) ] in
    match outcome.scored with
    | [ p; r ] -> if p.ratio < r.ratio then incr wins
    | _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "proposed won %d/5 seeds" !wins) true (!wins >= 4)

let suite =
  ( "selector+quality",
    [
      Alcotest.test_case "strategies valid" `Slow test_all_strategies_produce_valid_sets;
      Alcotest.test_case "strategy names" `Quick test_strategy_names;
      Alcotest.test_case "oracle optimal" `Quick test_oracle_sets_are_optimal;
      Alcotest.test_case "tiny population" `Quick test_small_population_smaller_sets;
      Alcotest.test_case "measure oracle ratio" `Quick test_measure_oracle_ratio_is_one;
      Alcotest.test_case "measure ordering" `Slow test_measure_ratios_ordered;
      Alcotest.test_case "measure validation" `Quick test_measure_validation;
      Alcotest.test_case "quality evaluate" `Quick test_quality_evaluate;
      Alcotest.test_case "quality ratio_vs" `Quick test_quality_ratio_vs;
      Alcotest.test_case "quality distances" `Quick test_quality_distance_helpers;
      Alcotest.test_case "hit ratio" `Quick test_hit_ratio_vs;
      Alcotest.test_case "hybrid composition" `Quick test_hybrid_composition;
      Alcotest.test_case "meridian selector" `Slow test_meridian_selector;
      Alcotest.test_case "proposed beats random across seeds" `Slow test_proposed_beats_random_consistently;
    ] )
