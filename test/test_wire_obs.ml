(* Wire-level observability: the transport's per-kind/per-direction byte
   accounting, dropped-byte reasons, top talkers, and the end-to-end
   Wire_exp invariants (accounting reconciles, amplification equals the
   replica count, batching saves upload bytes). *)

open Simkit

let labels = Alcotest.testable (fun fmt l ->
    Format.fprintf fmt "%s"
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)))
    ( = )

let _ = labels

let fixture ?metrics ?rng ?loss_prob () =
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let e = Engine.create () in
  (d, Transport.create ?rng ?loss_prob ?metrics e oracle)

let counter m name ~kind ~dir =
  Metrics.counter m name ~labels:[ ("kind", kind); ("dir", dir) ]

let sum_series m name =
  List.fold_left
    (fun acc (n, labels, _) -> if n = name then acc + Metrics.counter m n ~labels else acc)
    0 (Metrics.series m)

(* Every delivered byte lands in exactly one {kind,dir} series; multi-part
   frames charge each part to its own kind while counting one transport
   message; charge (synchronous accounting) uses the same books. *)
let test_labeled_accounting () =
  let metrics = Metrics.create () in
  let d, t = fixture ~metrics () in
  let e = Transport.engine t in
  Transport.send ~kind:"path_report" ~dir:"request" t ~src:d.p1 ~dst:d.lmk ~size_bytes:100
    (fun () -> ());
  Transport.send t ~src:d.p1 ~dst:d.lmk ~size_bytes:40 (fun () -> ());
  Transport.send_parts ~dir:"request" t ~src:d.p1 ~dst:d.lmk
    ~parts:[ ("path_report", 30); ("query", 20) ]
    (fun () -> ());
  Transport.charge ~kind:"snapshot" ~dir:"replica" t ~src:d.lmk ~dst:d.p1 ~size_bytes:77;
  Engine.run e;
  Alcotest.(check int) "path_report request bytes" 130
    (counter metrics "wire_bytes_total" ~kind:"path_report" ~dir:"request");
  Alcotest.(check int) "query request bytes" 20
    (counter metrics "wire_bytes_total" ~kind:"query" ~dir:"request");
  Alcotest.(check int) "default kind/dir bytes" 40
    (counter metrics "wire_bytes_total" ~kind:"other" ~dir:"oneway");
  Alcotest.(check int) "charged snapshot bytes" 77
    (counter metrics "wire_bytes_total" ~kind:"snapshot" ~dir:"replica");
  Alcotest.(check int) "path_report msgs (one per part)" 2
    (counter metrics "wire_msgs_total" ~kind:"path_report" ~dir:"request");
  Alcotest.(check int) "transport messages (one per frame)" 4 (Transport.messages_sent t);
  Alcotest.(check int) "bytes_sent aggregate" 267 (Transport.bytes_sent t);
  Alcotest.(check int) "per-kind bytes sum to bytes_sent" (Transport.bytes_sent t)
    (sum_series metrics "wire_bytes_total")

(* Dropped bytes land in per-reason buckets that sum to bytes_dropped, and
   never leak into the delivered accounting. *)
let test_dropped_bytes_by_reason () =
  let metrics = Metrics.create () in
  let g = Topology.Graph.of_edges ~node_count:4 [ (0, 1); (1, 2) ] in
  let oracle = Traceroute.Route_oracle.create g in
  let e = Engine.create () in
  let rng = Prelude.Prng.create 11 in
  let t = Transport.create ~rng ~metrics e oracle in
  (* Unreachable: node 3 is disconnected. *)
  Transport.send t ~src:0 ~dst:3 ~size_bytes:50 (fun () -> ());
  (* Partition: node 2 walled off. *)
  Transport.set_partition_nodes t [ 2 ];
  Transport.send t ~src:0 ~dst:2 ~size_bytes:30 (fun () -> ());
  Transport.clear_partition t;
  (* Loss: deterministic bookkeeping regardless of which sends the rng
     drops — all frames are 20 bytes, so loss bytes = 20 x loss count. *)
  Transport.set_loss_prob t 0.5;
  for _ = 1 to 40 do
    Transport.send t ~src:0 ~dst:2 ~size_bytes:20 (fun () -> ())
  done;
  Engine.run e;
  Alcotest.(check int) "unreachable bytes" 50 (Transport.dropped_unreachable_bytes t);
  Alcotest.(check int) "partition bytes" 30 (Transport.dropped_partition_bytes t);
  Alcotest.(check int) "loss bytes = 20 x loss count" (20 * Transport.dropped_loss t)
    (Transport.dropped_loss_bytes t);
  Alcotest.(check bool) "loss really dropped something" true (Transport.dropped_loss t > 0);
  Alcotest.(check int) "buckets sum to bytes_dropped"
    (Transport.dropped_loss_bytes t + Transport.dropped_unreachable_bytes t
   + Transport.dropped_partition_bytes t)
    (Transport.bytes_dropped t);
  (* The stats assoc exposes the byte buckets next to the message counts. *)
  let stats = Transport.stats t in
  List.iter
    (fun key ->
      match List.assoc_opt key stats with
      | Some _ -> ()
      | None -> Alcotest.failf "stats missing %s" key)
    [ "dropped_loss_bytes"; "dropped_unreachable_bytes"; "dropped_partition_bytes" ];
  Alcotest.(check int) "labeled dropped bytes reconcile" (Transport.bytes_dropped t)
    (sum_series metrics "wire_dropped_bytes_total");
  (* Dropped traffic is not delivered traffic. *)
  Alcotest.(check int) "delivered books exclude drops" (Transport.bytes_sent t)
    (sum_series metrics "wire_bytes_total")

let test_top_talkers () =
  let d, t = fixture () in
  let e = Transport.engine t in
  Transport.send t ~src:d.p1 ~dst:d.lmk ~size_bytes:500 (fun () -> ());
  Transport.send t ~src:d.p2 ~dst:d.lmk ~size_bytes:100 (fun () -> ());
  Transport.send t ~src:d.lmk ~dst:d.p1 ~size_bytes:50 (fun () -> ());
  Engine.run e;
  let talkers = Transport.top_talkers t ~k:2 in
  Alcotest.(check int) "k bounds the list" 2 (List.length talkers);
  (* lmk moved 650 (100+500 recv, 50 sent); p1 moved 550; p2 moved 100. *)
  let first = List.nth talkers 0 and second = List.nth talkers 1 in
  Alcotest.(check int) "loudest endpoint" d.lmk first.Transport.node;
  Alcotest.(check int) "loudest recv" 600 first.Transport.recv_bytes;
  Alcotest.(check int) "loudest sent" 50 first.Transport.sent_bytes;
  Alcotest.(check int) "runner-up" d.p1 second.Transport.node;
  Alcotest.(check int) "all endpoints tallied" 3 (Transport.endpoint_count t);
  Alcotest.(check int) "k above population returns all" 3
    (List.length (Transport.top_talkers t ~k:10));
  Alcotest.check_raises "negative k" (Invalid_argument "Transport.top_talkers: negative k")
    (fun () -> ignore (Transport.top_talkers t ~k:(-1)))

(* The end-to-end experiment on a small fixture: the two conservation
   invariants hold under a loss burst, amplification is exactly the
   replica count, every protocol kind moved bytes, and batching beats
   one-frame-per-report on client upload bytes. *)
let test_wire_exp_invariants () =
  let config =
    {
      Eval.Wire_exp.quick_config with
      routers = 400;
      peers = 80;
      batch = 16;
      arrival_window_ms = 3_000.0;
      sync_period_ms = 1_000.0;
      seed = 3;
    }
  in
  let r = Eval.Wire_exp.run config in
  Alcotest.(check bool) "accounting reconciles" true r.accounted;
  Alcotest.(check (float 1e-9)) "amplification = replicas" 3.0 r.replication_amplification;
  Alcotest.(check bool) "joins completed" true (r.completed > 0);
  let kind_bytes k =
    match List.find_opt (fun (row : Eval.Wire_exp.kind_row) -> row.kind = k) r.kinds with
    | Some row -> row.bytes
    | None -> 0
  in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " bytes nonzero") true (kind_bytes k > 0))
    [ "path_report"; "query"; "reply"; "fd_probe" ];
  Alcotest.(check bool) "loss burst dropped bytes" true (r.dropped_loss_bytes > 0);
  Alcotest.(check int) "kind rows sum to bytes_sent" r.bytes_sent
    (List.fold_left (fun acc (row : Eval.Wire_exp.kind_row) -> acc + row.bytes) 0 r.kinds);
  Alcotest.(check bool) "batch uploads fewer client bytes" true
    (r.batch_report_bytes < r.singleton_report_bytes);
  Alcotest.(check bool) "per-join cost is positive" true (r.bytes_per_join > 0.0);
  Alcotest.(check bool) "top talkers populated" true (r.top_talkers <> [])

(* The cluster mirrors its amplification into the labeled gauge the [wire]
   dashboard panel reads. *)
let test_amplification_gauge () =
  let config = { Eval.Fleet_obs.quick_config with routers = 400; peers = 40; seed = 4 } in
  let _, t = Eval.Fleet_obs.run config in
  let m = Eval.Fleet_obs.metrics t in
  match Metrics.gauge m "wire_replication_amplification" ~labels:[] with
  | Some v -> Alcotest.(check (float 1e-9)) "gauge = replica count" 3.0 v
  | None -> Alcotest.fail "wire_replication_amplification gauge missing"

let suite =
  ( "wire-obs",
    [
      Alcotest.test_case "labeled kind/dir accounting" `Quick test_labeled_accounting;
      Alcotest.test_case "dropped bytes by reason" `Quick test_dropped_bytes_by_reason;
      Alcotest.test_case "top talkers" `Quick test_top_talkers;
      Alcotest.test_case "wire_exp invariants" `Slow test_wire_exp_invariants;
      Alcotest.test_case "amplification gauge" `Quick test_amplification_gauge;
    ] )
