(* Buffer_map, Scheduler, Session. *)

open Streaming

(* --- Buffer_map --- *)

let test_bm_basic () =
  let b = Buffer_map.create ~width:8 in
  Alcotest.(check int) "width" 8 (Buffer_map.width b);
  Alcotest.(check int) "base" 0 (Buffer_map.base b);
  Alcotest.(check bool) "empty" false (Buffer_map.has b 0);
  Alcotest.(check bool) "add" true (Buffer_map.add b 3);
  Alcotest.(check bool) "idempotent" false (Buffer_map.add b 3);
  Alcotest.(check bool) "has" true (Buffer_map.has b 3);
  Alcotest.(check int) "count" 1 (Buffer_map.count b)

let test_bm_window_bounds () =
  let b = Buffer_map.create ~width:4 in
  Alcotest.(check bool) "beyond window rejected" false (Buffer_map.add b 4);
  Alcotest.(check bool) "negative rejected" false (Buffer_map.add b (-1));
  Alcotest.(check bool) "edge accepted" true (Buffer_map.add b 3);
  Alcotest.check_raises "zero width" (Invalid_argument "Buffer_map.create: width must be >= 1")
    (fun () -> ignore (Buffer_map.create ~width:0))

let test_bm_advance () =
  let b = Buffer_map.create ~width:4 in
  List.iter (fun c -> ignore (Buffer_map.add b c)) [ 0; 1; 2; 3 ];
  Buffer_map.advance_to b 2;
  Alcotest.(check int) "base moved" 2 (Buffer_map.base b);
  Alcotest.(check bool) "dropped 0" false (Buffer_map.has b 0);
  Alcotest.(check bool) "kept 2" true (Buffer_map.has b 2);
  Alcotest.(check bool) "slot recycled for 4" true (Buffer_map.add b 4);
  Alcotest.(check bool) "has 4" true (Buffer_map.has b 4);
  Buffer_map.advance_to b 1;
  Alcotest.(check int) "never moves back" 2 (Buffer_map.base b)

let test_bm_advance_far () =
  let b = Buffer_map.create ~width:4 in
  ignore (Buffer_map.add b 1);
  Buffer_map.advance_to b 100;
  Alcotest.(check int) "base" 100 (Buffer_map.base b);
  Alcotest.(check int) "everything dropped" 0 (Buffer_map.count b);
  Alcotest.(check bool) "can add in new window" true (Buffer_map.add b 102)

let test_bm_holdings_missing () =
  let b = Buffer_map.create ~width:6 in
  List.iter (fun c -> ignore (Buffer_map.add b c)) [ 0; 2; 4 ];
  Alcotest.(check (list int)) "holdings" [ 0; 2; 4 ] (Buffer_map.holdings b);
  Alcotest.(check (list int)) "missing upto 5" [ 1; 3 ] (Buffer_map.missing b ~upto:5);
  Alcotest.(check (list int)) "missing whole window" [ 1; 3; 5 ] (Buffer_map.missing b ~upto:100)

let test_bm_contiguous () =
  let b = Buffer_map.create ~width:8 in
  Alcotest.(check int) "empty run" 0 (Buffer_map.contiguous_from_base b);
  List.iter (fun c -> ignore (Buffer_map.add b c)) [ 0; 1; 2; 4 ];
  Alcotest.(check int) "run of 3" 3 (Buffer_map.contiguous_from_base b);
  ignore (Buffer_map.add b 3);
  Alcotest.(check int) "gap closed" 5 (Buffer_map.contiguous_from_base b)

let qcheck_bm_model =
  QCheck.Test.make ~name:"buffer map = set restricted to window" ~count:200
    QCheck.(list (int_range 0 30))
    (fun adds ->
      let b = Buffer_map.create ~width:10 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun c ->
          if Buffer_map.add b c then Hashtbl.replace model c ())
        adds;
      List.for_all (fun c -> Buffer_map.has b c = Hashtbl.mem model c) adds
      && Buffer_map.count b = Hashtbl.length model)

(* --- Scheduler --- *)

let test_sched_earliest () =
  let picked =
    Scheduler.select Scheduler.Earliest_deadline ~missing:[ 3; 5; 7; 9 ]
      ~neighbor_has:(fun c -> c <> 5)
      ~rarity:(fun _ -> 1)
      ~already_requested:(fun c -> c = 3)
      ~limit:2
  in
  Alcotest.(check (list int)) "earliest available, not requested" [ 7; 9 ] picked

let test_sched_rarest () =
  let rarity = function 3 -> 5 | 5 -> 1 | 7 -> 1 | _ -> 2 in
  let picked =
    Scheduler.select Scheduler.Rarest_first ~missing:[ 3; 5; 7; 9 ]
      ~neighbor_has:(fun _ -> true)
      ~rarity
      ~already_requested:(fun _ -> false)
      ~limit:3
  in
  (* Rarity 1 chunks first (ties by id), then rarity 2. *)
  Alcotest.(check (list int)) "rarest first" [ 5; 7; 9 ] picked

let test_sched_limit () =
  Alcotest.(check (list int)) "zero limit" []
    (Scheduler.select Scheduler.Earliest_deadline ~missing:[ 1 ]
       ~neighbor_has:(fun _ -> true)
       ~rarity:(fun _ -> 0)
       ~already_requested:(fun _ -> false)
       ~limit:0);
  Alcotest.(check string) "names" "rarest-first" (Scheduler.policy_name Scheduler.Rarest_first)

(* --- Session --- *)

let session_fixture ~peers ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 400) ~seed in
  let rng = Prelude.Prng.create seed in
  let peer_routers =
    Array.map (fun i -> map.leaves.(i))
      (Prelude.Prng.sample_without_replacement rng ~k:peers ~n:(Array.length map.leaves))
  in
  (map, peer_routers, rng)

let short_params =
  { Session.default_params with duration_ms = 8_000.0; window = 32; startup_chunks = 4 }

let test_session_runs_and_delivers () =
  let map, peer_routers, rng = session_fixture ~peers:30 ~seed:1 in
  (* Random mesh: well connected. *)
  let n = Array.length peer_routers in
  let neighbor_sets =
    Array.init n (fun i ->
        Array.map (fun j -> if j >= i then j + 1 else j)
          (Prelude.Prng.sample_without_replacement rng ~k:4 ~n:(n - 1)))
  in
  let report =
    Session.run ~params:short_params ~graph:map.graph ~source_router:map.core.(0) ~peer_routers
      ~neighbor_sets ~seed:7 ()
  in
  Alcotest.(check bool) "everyone starts" true (report.started_fraction > 0.9);
  Alcotest.(check bool) "high continuity" true (report.continuity > 0.8);
  Alcotest.(check bool) "messages flowed" true (report.messages > 0);
  Alcotest.(check bool) "stress >= bytes" true (report.link_bytes >= report.bytes);
  Alcotest.(check bool) "chunk latency positive" true (report.mean_chunk_latency_ms > 0.0);
  Array.iter
    (fun (r : Session.peer_report) ->
      if not (Float.is_nan r.startup_delay_ms) then begin
        Alcotest.(check bool) "startup positive" true (r.startup_delay_ms >= 0.0);
        Alcotest.(check bool) "played something" true (r.chunks_played > 0)
      end)
    report.peers

let test_session_deterministic () =
  let map, peer_routers, _ = session_fixture ~peers:20 ~seed:2 in
  let neighbor_sets = Array.init 20 (fun i -> [| (i + 1) mod 20; (i + 2) mod 20 |]) in
  let run () =
    Session.run ~params:short_params ~graph:map.graph ~source_router:map.core.(0) ~peer_routers
      ~neighbor_sets ~seed:5 ()
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0)) "same continuity" a.continuity b.continuity;
  Alcotest.(check int) "same messages" a.messages b.messages;
  Alcotest.(check int) "same bytes" a.bytes b.bytes

let test_session_no_neighbors_no_playback () =
  let map, peer_routers, _ = session_fixture ~peers:10 ~seed:3 in
  (* Empty mesh: only the source fanout delivers chunks; most peers never
     accumulate the startup run. *)
  let neighbor_sets = Array.make 10 [||] in
  let report =
    Session.run
      ~params:{ short_params with source_fanout = 1; startup_chunks = 8 }
      ~graph:map.graph ~source_router:map.core.(0) ~peer_routers ~neighbor_sets ~seed:4 ()
  in
  Alcotest.(check bool) "mesh matters" true (report.started_fraction < 0.5)

let test_session_validation () =
  let map, peer_routers, _ = session_fixture ~peers:5 ~seed:4 in
  Alcotest.check_raises "bad window" (Invalid_argument "Session.run: bad window/startup") (fun () ->
      ignore
        (Session.run
           ~params:{ short_params with startup_chunks = 100 }
           ~graph:map.graph ~source_router:0 ~peer_routers ~neighbor_sets:(Array.make 5 [||])
           ~seed:1 ()));
  Alcotest.check_raises "mismatched sets" (Invalid_argument "Session.run: one neighbor set per peer")
    (fun () ->
      ignore
        (Session.run ~params:short_params ~graph:map.graph ~source_router:0 ~peer_routers
           ~neighbor_sets:(Array.make 3 [||]) ~seed:1 ()))

let test_streaming_exp_smoke () =
  let rows =
    Eval.Streaming_exp.run
      {
        Eval.Streaming_exp.routers = 400;
        peers = 40;
        landmark_count = 4;
        k = 4;
        session = { Session.default_params with duration_ms = 6_000.0 };
        seed = 3;
      }
  in
  Alcotest.(check int) "five selectors" 5 (List.length rows);
  List.iter
    (fun (r : Eval.Streaming_exp.row) ->
      Alcotest.(check bool) "continuity in [0,1]" true (r.continuity >= 0.0 && r.continuity <= 1.0);
      Alcotest.(check bool) "bytes accounted" true (r.megabytes > 0.0 && r.link_megabytes >= r.megabytes))
    rows;
  (* The random links guarantee a connected swarm: everyone must start and
     sustain playback.  (Pure-local meshes have no such guarantee, so no
     comparative assertion at this tiny scale.) *)
  let find name = List.find (fun (r : Eval.Streaming_exp.row) -> r.selector = name) rows in
  Alcotest.(check bool) "hybrid swarm fully starts" true
    ((find "proposed+2rand").started_fraction > 0.9);
  Alcotest.(check bool) "hybrid continuity high" true ((find "proposed+2rand").continuity > 0.7)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "streaming",
    [
      Alcotest.test_case "buffer map basic" `Quick test_bm_basic;
      Alcotest.test_case "buffer map bounds" `Quick test_bm_window_bounds;
      Alcotest.test_case "buffer map advance" `Quick test_bm_advance;
      Alcotest.test_case "buffer map far advance" `Quick test_bm_advance_far;
      Alcotest.test_case "buffer map holdings/missing" `Quick test_bm_holdings_missing;
      Alcotest.test_case "buffer map contiguous" `Quick test_bm_contiguous;
      q qcheck_bm_model;
      Alcotest.test_case "scheduler earliest" `Quick test_sched_earliest;
      Alcotest.test_case "scheduler rarest" `Quick test_sched_rarest;
      Alcotest.test_case "scheduler limit" `Quick test_sched_limit;
      Alcotest.test_case "session delivers" `Slow test_session_runs_and_delivers;
      Alcotest.test_case "session deterministic" `Slow test_session_deterministic;
      Alcotest.test_case "session needs the mesh" `Slow test_session_no_neighbors_no_playback;
      Alcotest.test_case "session validation" `Quick test_session_validation;
      Alcotest.test_case "streaming experiment" `Slow test_streaming_exp_smoke;
    ] )
