(* Maintenance: client-side neighbor-set refresh. *)

open Nearby

let fixture ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 400) ~seed in
  let rng = Prelude.Prng.create seed in
  let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:4 ~rng in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let server = Server.create oracle ~landmarks in
  let engine = Simkit.Engine.create () in
  (map, server, engine)

let test_create_validation () =
  let _, server, engine = fixture ~seed:1 in
  Alcotest.check_raises "bad k" (Invalid_argument "Maintenance.create: k must be >= 1") (fun () ->
      ignore
        (Maintenance.create ~engine ~server ~is_alive:(fun _ -> true)
           { k = 0; refresh_period_ms = 1.0 }));
  Alcotest.check_raises "bad period" (Invalid_argument "Maintenance.create: period must be positive")
    (fun () ->
      ignore
        (Maintenance.create ~engine ~server ~is_alive:(fun _ -> true)
           { k = 3; refresh_period_ms = 0.0 }))

let test_track_untrack () =
  let map, server, engine = fixture ~seed:2 in
  let m =
    Maintenance.create ~engine ~server ~is_alive:(fun _ -> true) { k = 3; refresh_period_ms = 100.0 }
  in
  Alcotest.check_raises "unregistered peer" Not_found (fun () -> Maintenance.track m ~peer:0);
  for peer = 0 to 9 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  Maintenance.track m ~peer:0;
  Alcotest.(check bool) "tracked" true (Maintenance.is_tracked m ~peer:0);
  Alcotest.(check int) "one tracked" 1 (Maintenance.tracked_count m);
  let set = Maintenance.current_set m ~peer:0 in
  Alcotest.(check int) "initial set filled" 3 (List.length set);
  Alcotest.(check bool) "no self" true (List.for_all (fun p -> p <> 0) set);
  Alcotest.check_raises "double track" (Invalid_argument "Maintenance.track: already tracked")
    (fun () -> Maintenance.track m ~peer:0);
  Maintenance.untrack m ~peer:0;
  Alcotest.(check bool) "untracked" false (Maintenance.is_tracked m ~peer:0);
  Alcotest.(check (list int)) "empty set" [] (Maintenance.current_set m ~peer:0)

let test_refresh_replaces_dead () =
  let map, server, engine = fixture ~seed:3 in
  let dead : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let is_alive p = not (Hashtbl.mem dead p) in
  let m = Maintenance.create ~engine ~server ~is_alive { k = 3; refresh_period_ms = 100.0 } in
  for peer = 0 to 19 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  Maintenance.track m ~peer:0;
  let before = Maintenance.current_set m ~peer:0 in
  Alcotest.(check (float 1e-9)) "all live initially" 1.0 (Maintenance.live_fraction m);
  (* Kill one of peer 0's neighbors (and deregister it, as crash detection
     eventually would). *)
  let victim = List.hd before in
  Hashtbl.replace dead victim ();
  Server.leave server ~peer:victim;
  Alcotest.(check bool) "fraction dips" true (Maintenance.live_fraction m < 1.0);
  Simkit.Engine.run ~until:250.0 engine;
  let after = Maintenance.current_set m ~peer:0 in
  Alcotest.(check int) "set refilled" 3 (List.length after);
  Alcotest.(check bool) "victim evicted" true (List.for_all (fun p -> p <> victim) after);
  Alcotest.(check (float 1e-9)) "all live again" 1.0 (Maintenance.live_fraction m);
  Alcotest.(check bool) "replacement counted" true (Maintenance.replacements m >= 1)

let test_refresh_stops_after_untrack () =
  let map, server, engine = fixture ~seed:4 in
  let m =
    Maintenance.create ~engine ~server ~is_alive:(fun _ -> true) { k = 2; refresh_period_ms = 50.0 }
  in
  for peer = 0 to 5 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  Maintenance.track m ~peer:0;
  Maintenance.untrack m ~peer:0;
  (* The pending refresh event fires harmlessly and does not reschedule
     forever: the engine must drain. *)
  Simkit.Engine.run ~until:1_000.0 engine;
  Alcotest.(check int) "engine drained" 0 (Simkit.Engine.pending engine)

let test_untracks_when_server_forgets () =
  let map, server, engine = fixture ~seed:5 in
  let m =
    Maintenance.create ~engine ~server ~is_alive:(fun _ -> true) { k = 2; refresh_period_ms = 50.0 }
  in
  for peer = 0 to 5 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  Maintenance.track m ~peer:0;
  Server.leave server ~peer:0;
  Simkit.Engine.run ~until:500.0 engine;
  Alcotest.(check bool) "auto-untracked" false (Maintenance.is_tracked m ~peer:0);
  Alcotest.(check int) "no dangling refresh" 0 (Simkit.Engine.pending engine)

let test_maintenance_exp_smoke () =
  let checkpoints =
    Eval.Maintenance_exp.run { Eval.Maintenance_exp.quick_config with routers = 400; checkpoints = 2 }
  in
  Alcotest.(check int) "checkpoints" 2 (List.length checkpoints);
  List.iter
    (fun (c : Eval.Maintenance_exp.checkpoint) ->
      Alcotest.(check bool) "fractions in [0,1]" true
        (c.frozen_live_fraction >= 0.0 && c.frozen_live_fraction <= 1.0
        && c.maintained_live_fraction >= 0.0
        && c.maintained_live_fraction <= 1.0 +. 1e-9);
      Alcotest.(check bool) "maintenance no worse than frozen" true
        (c.maintained_live_fraction +. 0.05 >= c.frozen_live_fraction))
    checkpoints

let suite =
  ( "maintenance",
    [
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "track/untrack" `Quick test_track_untrack;
      Alcotest.test_case "refresh replaces dead" `Quick test_refresh_replaces_dead;
      Alcotest.test_case "refresh stops after untrack" `Quick test_refresh_stops_after_untrack;
      Alcotest.test_case "auto-untrack on server leave" `Quick test_untracks_when_server_forgets;
      Alcotest.test_case "experiment smoke" `Slow test_maintenance_exp_smoke;
    ] )
