(* Rpc: the retrying request/response state machine — settle-once, timeout
   and backoff schedule, per-attempt failover, guaranteed termination. *)

open Simkit

let drawing () =
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let transport = Transport.create (Engine.create ()) oracle in
  (d, transport)

(* Deterministic test config: 100 ms timeout, 3 attempts, 50 ms base
   backoff doubling, no jitter. *)
let config =
  {
    Rpc.timeout_ms = 100.0;
    max_attempts = 3;
    backoff_base_ms = 50.0;
    backoff_multiplier = 2.0;
    jitter_frac = 0.0;
  }

let counter rpc = Trace.counter (Rpc.trace rpc)

let test_config_validation () =
  let _, transport = drawing () in
  let bad msg config =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Rpc.create ~config transport))
  in
  bad "Rpc: timeout_ms must be positive" { config with timeout_ms = 0.0 };
  bad "Rpc: max_attempts must be at least 1" { config with max_attempts = 0 };
  bad "Rpc: backoff_base_ms must be non-negative" { config with backoff_base_ms = -1.0 };
  bad "Rpc: backoff_multiplier must be >= 1" { config with backoff_multiplier = 0.5 };
  bad "Rpc: jitter_frac outside [0, 1)" { config with jitter_frac = 1.0 }

let test_clean_call_single_attempt () =
  let d, transport = drawing () in
  let e = Transport.engine transport in
  let rpc = Rpc.create ~config transport in
  let got = ref None and done_at = ref nan in
  Rpc.call rpc ~src:d.p1
    ~dst:(fun ~attempt:_ -> Some d.lmk)
    ~request_bytes:50
    ~reply_bytes:(fun _ -> 500)
    ~handle:(fun ~dst:_ -> Some 42)
    ~on_reply:(fun v ->
      got := Some v;
      done_at := Engine.now e)
    ~on_give_up:(fun () -> Alcotest.fail "gave up on a clean call");
  Engine.run e;
  Alcotest.(check (option int)) "reply value" (Some 42) !got;
  (* p1 -> lmk is 5 hops each way: full RTT with no jitter. *)
  Alcotest.(check (float 1e-9)) "one clean RTT" 10.0 !done_at;
  Alcotest.(check int) "one attempt" 1 (counter rpc "rpc_attempts");
  Alcotest.(check int) "no retries" 0 (counter rpc "rpc_retries");
  Alcotest.(check int) "no timeouts" 0 (counter rpc "rpc_timeouts");
  Alcotest.(check int) "settled ok" 1 (counter rpc "rpc_ok")

let test_gives_up_after_max_attempts () =
  (* Target unreachable (isolated node): every attempt times out and the
     give-up lands exactly at sum(timeouts) + sum(backoffs). *)
  let g = Topology.Graph.of_edges ~node_count:3 [ (0, 1) ] in
  let oracle = Traceroute.Route_oracle.create g in
  let e = Engine.create () in
  let transport = Transport.create e oracle in
  let rpc = Rpc.create ~config transport in
  let gave_up_at = ref nan in
  Rpc.call rpc ~src:0
    ~dst:(fun ~attempt:_ -> Some 2)
    ~request_bytes:10
    ~reply_bytes:(fun _ -> 10)
    ~handle:(fun ~dst:_ -> Some ())
    ~on_reply:(fun () -> Alcotest.fail "replied through a dead link")
    ~on_give_up:(fun () -> gave_up_at := Engine.now e);
  Engine.run e;
  (* t=0 attempt 1; timeout 100, backoff 50; t=150 attempt 2; timeout 250,
     backoff 100; t=350 attempt 3; timeout and give-up at 450. *)
  Alcotest.(check (float 1e-9)) "terminates at the worst-case bound" 450.0 !gave_up_at;
  Alcotest.(check int) "all attempts used" 3 (counter rpc "rpc_attempts");
  Alcotest.(check int) "two retries" 2 (counter rpc "rpc_retries");
  Alcotest.(check int) "three timeouts" 3 (counter rpc "rpc_timeouts");
  Alcotest.(check int) "gave up once" 1 (counter rpc "rpc_gave_up");
  Alcotest.(check int) "never ok" 0 (counter rpc "rpc_ok")

let test_retry_fails_over_to_second_target () =
  (* Attempt 1 goes to an isolated replica, attempt 2 to a live one: the
     call completes and records the failover. *)
  let g = Topology.Graph.of_edges ~node_count:4 [ (0, 1); (1, 2) ] in
  let oracle = Traceroute.Route_oracle.create g in
  let e = Engine.create () in
  let transport = Transport.create e oracle in
  let rpc = Rpc.create ~config transport in
  let got = ref None and asked = ref [] in
  Rpc.call rpc ~src:0
    ~dst:(fun ~attempt -> if attempt = 1 then Some 3 else Some 2)
    ~request_bytes:10
    ~reply_bytes:(fun _ -> 10)
    ~handle:(fun ~dst ->
      asked := dst :: !asked;
      Some dst)
    ~on_reply:(fun v -> got := Some v)
    ~on_give_up:(fun () -> Alcotest.fail "gave up despite a live fallback");
  Engine.run e;
  Alcotest.(check (option int)) "served by the fallback" (Some 2) !got;
  Alcotest.(check (list int)) "only the live replica executed" [ 2 ] !asked;
  Alcotest.(check int) "two attempts" 2 (counter rpc "rpc_attempts");
  Alcotest.(check int) "one timeout" 1 (counter rpc "rpc_timeouts");
  Alcotest.(check int) "ok" 1 (counter rpc "rpc_ok")

let test_unserved_then_recovered () =
  (* The server is down when the first request arrives (handle = None) and
     back up for the retry. *)
  let d, transport = drawing () in
  let e = Transport.engine transport in
  let rpc = Rpc.create ~config transport in
  let up = ref false in
  Engine.schedule e ~delay:50.0 (fun () -> up := true);
  let got = ref None in
  Rpc.call rpc ~src:d.p1
    ~dst:(fun ~attempt:_ -> Some d.lmk)
    ~request_bytes:10
    ~reply_bytes:(fun _ -> 10)
    ~handle:(fun ~dst:_ -> if !up then Some () else None)
    ~on_reply:(fun v -> got := Some v)
    ~on_give_up:(fun () -> Alcotest.fail "gave up on a recovered server");
  Engine.run e;
  Alcotest.(check (option unit)) "eventually served" (Some ()) !got;
  Alcotest.(check int) "first request died unserved" 1 (counter rpc "rpc_unserved");
  Alcotest.(check int) "retried" 1 (counter rpc "rpc_retries");
  Alcotest.(check int) "ok once" 1 (counter rpc "rpc_ok")

let test_settles_once_under_duplicate_replies () =
  (* Timeout shorter than the RTT: attempt 1's reply is still in flight
     when attempt 2 starts, so two replies eventually arrive — exactly one
     on_reply, and the idempotent re-execution is visible to the server. *)
  let d, transport = drawing () in
  let e = Transport.engine transport in
  let tight = { config with timeout_ms = 6.0; backoff_base_ms = 1.0; max_attempts = 5 } in
  let rpc = Rpc.create ~config:tight transport in
  let replies = ref 0 and served = ref 0 in
  Rpc.call rpc ~src:d.p1
    ~dst:(fun ~attempt:_ -> Some d.lmk)
    ~request_bytes:10
    ~reply_bytes:(fun _ -> 10)
    ~handle:(fun ~dst:_ ->
      incr served;
      Some ())
    ~on_reply:(fun () -> incr replies)
    ~on_give_up:(fun () -> Alcotest.fail "gave up despite replies");
  Engine.run e;
  Alcotest.(check int) "exactly one on_reply" 1 !replies;
  Alcotest.(check bool)
    (Printf.sprintf "server executed the duplicate too (%d)" !served)
    true (!served >= 2);
  Alcotest.(check int) "one settled ok" 1 (counter rpc "rpc_ok")

let test_no_target_still_terminates () =
  let d, transport = drawing () in
  let e = Transport.engine transport in
  let rpc = Rpc.create ~config transport in
  let gave_up = ref false in
  Rpc.call rpc ~src:d.p1
    ~dst:(fun ~attempt:_ -> None)
    ~request_bytes:10
    ~reply_bytes:(fun _ -> 10)
    ~handle:(fun ~dst:_ -> Some ())
    ~on_reply:(fun () -> Alcotest.fail "replied with no target")
    ~on_give_up:(fun () -> gave_up := true);
  Engine.run e;
  Alcotest.(check bool) "gave up" true !gave_up;
  Alcotest.(check int) "every attempt lacked a target" 3 (counter rpc "rpc_no_target");
  Alcotest.(check int) "nothing sent" 0 (Transport.messages_sent transport)

let test_backoff_jitter_spread () =
  let d, transport = drawing () in
  let rng = Prelude.Prng.create 5 in
  let rpc = Rpc.create ~config:{ config with jitter_frac = 0.2 } ~rng transport in
  ignore d;
  let base = 50.0 in
  for _ = 1 to 50 do
    let b = Rpc.backoff_ms rpc ~attempt:1 in
    Alcotest.(check bool)
      (Printf.sprintf "within +-20%% of base (%.1f)" b)
      true
      (b >= base *. 0.8 -. 1e-9 && b <= base *. 1.2 +. 1e-9)
  done;
  let no_jitter = Rpc.create ~config transport in
  Alcotest.(check (float 1e-9)) "deterministic without jitter" 100.0
    (Rpc.backoff_ms no_jitter ~attempt:2)

let suite =
  ( "rpc",
    [
      Alcotest.test_case "config validation" `Quick test_config_validation;
      Alcotest.test_case "clean call, one attempt" `Quick test_clean_call_single_attempt;
      Alcotest.test_case "gives up after max attempts" `Quick test_gives_up_after_max_attempts;
      Alcotest.test_case "retry fails over" `Quick test_retry_fails_over_to_second_target;
      Alcotest.test_case "unserved then recovered" `Quick test_unserved_then_recovered;
      Alcotest.test_case "settles once on duplicates" `Quick
        test_settles_once_under_duplicate_replies;
      Alcotest.test_case "no target terminates" `Quick test_no_target_still_terminates;
      Alcotest.test_case "backoff jitter spread" `Quick test_backoff_jitter_spread;
    ] )
