(* Timeseries: fixed-width windowed aggregation on an explicit clock. *)

open Simkit

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_validation () =
  (match Timeseries.create ~window_ms:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero width accepted");
  match Timeseries.create ~capacity:0 ~window_ms:10.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity accepted"

let test_basic_aggregation () =
  let t = Timeseries.create ~window_ms:100.0 () in
  Timeseries.observe t "lat" ~now:10.0 4.0;
  Timeseries.observe t "lat" ~now:60.0 8.0;
  Timeseries.observe t "lat" ~now:250.0 20.0;
  match Timeseries.windows t "lat" with
  | [ Some w0; None; Some w2 ] ->
      Alcotest.(check int) "w0 index" 0 w0.Timeseries.index;
      Alcotest.(check int) "w0 count" 2 w0.Timeseries.count;
      Alcotest.(check (float 1e-9)) "w0 mean" 6.0 w0.Timeseries.mean;
      Alcotest.(check (float 1e-9)) "w0 rate (2 per 100ms)" 20.0 w0.Timeseries.rate_per_s;
      Alcotest.(check (float 1e-9)) "w0 from_ms" 0.0 w0.Timeseries.from_ms;
      Alcotest.(check int) "w2 index" 2 w2.Timeseries.index;
      Alcotest.(check (float 1e-9)) "w2 p50" 20.0 w2.Timeseries.p50;
      Alcotest.(check (float 1e-9)) "w2 from_ms" 200.0 w2.Timeseries.from_ms
  | ws -> Alcotest.fail (Printf.sprintf "expected [Some; None; Some], got %d windows" (List.length ws))

let test_exact_boundary_rolls_over () =
  (* Windows are half-open: a sample at exactly k * window_ms belongs to
     window k, not k-1. *)
  let t = Timeseries.create ~window_ms:100.0 () in
  Timeseries.observe t "x" ~now:99.999 1.0;
  Timeseries.observe t "x" ~now:100.0 2.0;
  (match Timeseries.windows t "x" with
  | [ Some w0; Some w1 ] ->
      Alcotest.(check int) "window 0 count" 1 w0.Timeseries.count;
      Alcotest.(check int) "window 1 count" 1 w1.Timeseries.count;
      Alcotest.(check (float 1e-9)) "boundary sample in window 1" 2.0 w1.Timeseries.mean
  | _ -> Alcotest.fail "expected exactly two windows");
  Alcotest.(check (option int)) "latest" (Some 1) (Timeseries.latest_index t "x")

let test_negative_now_clamps () =
  let t = Timeseries.create ~window_ms:50.0 () in
  Timeseries.observe t "x" ~now:(-3.0) 7.0;
  match Timeseries.windows t "x" with
  | [ Some w ] -> Alcotest.(check int) "window 0" 0 w.Timeseries.index
  | _ -> Alcotest.fail "expected one window"

let test_ring_eviction () =
  let t = Timeseries.create ~capacity:4 ~window_ms:10.0 () in
  for i = 0 to 9 do
    Timeseries.observe t "x" ~now:(float_of_int (i * 10)) (float_of_int i)
  done;
  let ws = Timeseries.windows t "x" in
  Alcotest.(check int) "capacity bounds the ring" 4 (List.length ws);
  (match ws with
  | Some first :: _ ->
      Alcotest.(check int) "oldest retained window" 6 first.Timeseries.index
  | _ -> Alcotest.fail "oldest window missing");
  match List.rev ws with
  | Some last :: _ -> Alcotest.(check (float 1e-9)) "newest value" 9.0 last.Timeseries.mean
  | _ -> Alcotest.fail "newest window missing"

let test_empty_windows_serialize_null () =
  let t = Timeseries.create ~window_ms:100.0 () in
  Timeseries.observe t "lat" ~now:0.0 1.0;
  Timeseries.observe t "lat" ~now:350.0 2.0;
  let doc = Timeseries.to_json t in
  Alcotest.(check bool) "series present" true (contains "\"lat\"" doc);
  Alcotest.(check bool) "gap windows are null" true (contains "null, null" doc);
  Alcotest.(check bool) "window fields" true (contains "\"count\"" doc);
  Alcotest.(check bool) "no nan leaks" false (contains "nan" doc)

let test_reset_keeps_handles_live () =
  let t = Timeseries.create ~window_ms:10.0 () in
  let s = Timeseries.series t "x" in
  Timeseries.observe_series t s ~now:5.0 1.0;
  Alcotest.(check int) "one window before reset" 1 (List.length (Timeseries.windows t "x"));
  Timeseries.reset t;
  Alcotest.(check int) "emptied in place" 0 (List.length (Timeseries.windows t "x"));
  Alcotest.(check (option int)) "latest cleared" None (Timeseries.latest_index t "x");
  (* The cached handle must still feed the same named series.  Window 2 is
     the newest; windows 0 and 1 are in range but empty. *)
  Timeseries.observe_series t s ~now:25.0 9.0;
  match Timeseries.windows t "x" with
  | [ None; None; Some w ] ->
      Alcotest.(check int) "handle still wired to \"x\"" 2 w.Timeseries.index;
      Alcotest.(check (float 1e-9)) "fresh sample visible" 9.0 w.Timeseries.mean
  | _ -> Alcotest.fail "cached handle lost after reset"

let test_names_sorted () =
  let t = Timeseries.create ~window_ms:10.0 () in
  Timeseries.observe t "zeta" ~now:0.0 1.0;
  Timeseries.observe t "alpha" ~now:0.0 1.0;
  Alcotest.(check (list string)) "alphabetical" [ "alpha"; "zeta" ] (Timeseries.names t)

let suite =
  ( "timeseries",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "basic aggregation" `Quick test_basic_aggregation;
      Alcotest.test_case "exact boundary rolls over" `Quick test_exact_boundary_rolls_over;
      Alcotest.test_case "negative now clamps" `Quick test_negative_now_clamps;
      Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "empty windows serialize null" `Quick test_empty_windows_serialize_null;
      Alcotest.test_case "reset keeps handles live" `Quick test_reset_keeps_handles_live;
      Alcotest.test_case "names sorted" `Quick test_names_sorted;
    ] )
