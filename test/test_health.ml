(* State health: content-digest divergence episodes, the digest-gated
   anti-entropy transfer, report staleness, and the health experiment's
   end-to-end invariants. *)

open Test_cluster

(* --- Report staleness --------------------------------------------------- *)

let test_staleness_tracking () =
  let fx = fixture ~seed:41 () in
  let server = make_server fx () in
  let clock = ref 0.0 in
  Nearby.Server.set_clock server (fun () -> !clock);
  ignore (Nearby.Server.join server ~peer:0 ~attach_router:fx.map.leaves.(0));
  clock := 400.0;
  ignore (Nearby.Server.join server ~peer:1 ~attach_router:fx.map.leaves.(1));
  Alcotest.(check (option (float 1e-9)))
    "peer 0 stamped at join time" (Some 0.0)
    (Nearby.Server.registration_time server 0);
  Alcotest.(check (option (float 1e-9)))
    "peer 1 stamped at join time" (Some 400.0)
    (Nearby.Server.registration_time server 1);
  Alcotest.(check int) "joins feed report_refresh" 2
    (Simkit.Trace.counter (Nearby.Server.trace server) "report_refresh");
  let tracker = Nearby.Staleness.create server in
  clock := 1000.0;
  let metrics = Simkit.Metrics.create () in
  let report = Nearby.Staleness.observe ~metrics tracker ~now:!clock in
  Alcotest.(check int) "both reports aged" 2 report.members;
  Alcotest.(check (float 1e-9)) "oldest is the t=0 report" 1000.0 report.oldest_ms;
  Alcotest.(check (float 1e-9)) "mean of 1000 and 600" 800.0 report.mean_ms;
  Alcotest.(check bool) "first observe has no rate window" true
    (Float.is_nan report.refresh_rate_hz);
  Alcotest.(check (option (float 1e-9)))
    "members gauge exported" (Some 2.0)
    (Simkit.Metrics.gauge metrics "staleness_members" ~labels:[]);
  (* A leave removes the stamp immediately; a refresh counts in the rate. *)
  Nearby.Server.leave server ~peer:0;
  clock := 3000.0;
  ignore (Nearby.Server.join server ~peer:2 ~attach_router:fx.map.leaves.(2));
  let report = Nearby.Staleness.observe tracker ~now:!clock in
  Alcotest.(check int) "left peer stops contributing" 2 report.members;
  Alcotest.(check (float 1e-9)) "oldest is now the t=400 report" 2600.0 report.oldest_ms;
  (* One refresh (peer 2's join) over the 2 s since the last observe. *)
  Alcotest.(check (float 1e-9)) "refresh rate over the window" 0.5 report.refresh_rate_hz

(* --- Divergence episodes are edge-triggered ----------------------------- *)

let events_with ~detail recorder =
  Simkit.Flight_recorder.events recorder
  |> List.filter (fun (e : Simkit.Flight_recorder.event) ->
         e.kind = "cluster" && e.detail = detail)

let test_divergence_edges_once_per_episode () =
  let fx = fixture ~seed:42 () in
  let recorder = Simkit.Flight_recorder.create ~capacity:64 () in
  let metrics = Simkit.Metrics.create () in
  let cluster =
    Nearby.Cluster.create ~detector_config ~recorder ~metrics ~transport:fx.transport
      ~client_router:fx.map.core.(0) ~make_server:(make_server fx)
      ~restore_server:(fun data -> Nearby.Server.restore fx.oracle data)
      ~routers:fx.replica_routers ()
  in
  Alcotest.(check (list int)) "healthy cluster is consistent" []
    (Nearby.Cluster.digest_check cluster);
  (* Diverge replica 0 by registering on its server directly — the write
     never fans out, so replicas 1 and 2 miss it.  Replica 0 is then the
     most complete replica (the reference), and the others are divergent. *)
  ignore
    (Nearby.Server.join (Nearby.Cluster.server_of cluster 0) ~peer:7
       ~attach_router:fx.map.leaves.(0));
  Simkit.Engine.schedule_at fx.engine ~time:100.0 (fun () ->
      Alcotest.(check (list int)) "replicas 1,2 divergent" [ 1; 2 ]
        (Nearby.Cluster.digest_check cluster);
      Alcotest.(check (option (float 1e-9)))
        "episode stopwatch started" (Some 100.0)
        (Nearby.Cluster.divergence_since cluster));
  Simkit.Engine.schedule_at fx.engine ~time:200.0 (fun () ->
      (* Still the same episode: no second edge, stopwatch unchanged. *)
      Alcotest.(check (list int)) "still divergent" [ 1; 2 ]
        (Nearby.Cluster.digest_check cluster);
      Alcotest.(check (option (float 1e-9)))
        "stopwatch not restarted" (Some 100.0)
        (Nearby.Cluster.divergence_since cluster);
      Alcotest.(check int) "one divergence edge so far" 1
        (List.length (events_with ~detail:"divergence" recorder)));
  Simkit.Engine.schedule_at fx.engine ~time:600.0 (fun () ->
      (* The repair: sync restores the stragglers and its closing check
         records the convergence edge. *)
      Nearby.Cluster.sync_round cluster);
  Simkit.Engine.schedule_at fx.engine ~time:700.0 (fun () ->
      Alcotest.(check (list int)) "consistent after repair" []
        (Nearby.Cluster.digest_check cluster);
      Alcotest.(check (option (float 1e-9)))
        "episode closed" None
        (Nearby.Cluster.divergence_since cluster));
  Simkit.Engine.run fx.engine ~until:1000.0;
  (match events_with ~detail:"divergence" recorder with
  | [ e ] ->
      Alcotest.(check (float 1e-9)) "divergence edge at first detection" 100.0 e.ts;
      Alcotest.(check (option string))
        "edge names the offending replicas" (Some "1,2")
        (match List.assoc_opt "replicas" e.args with
        | Some (Simkit.Span.Str s) -> Some s
        | _ -> None)
  | es -> Alcotest.fail (Printf.sprintf "%d divergence edges, expected 1" (List.length es)));
  (match events_with ~detail:"convergence" recorder with
  | [ e ] ->
      Alcotest.(check (float 1e-9)) "convergence edge at the repair" 600.0 e.ts
  | es -> Alcotest.fail (Printf.sprintf "%d convergence edges, expected 1" (List.length es)));
  (* The lag stream holds exactly the one closed episode: 100 → 600 ms. *)
  (match Simkit.Trace.summary (Nearby.Cluster.trace cluster) "cluster_antientropy_lag_ms" with
  | Some s ->
      Alcotest.(check int) "one lag sample" 1 s.count;
      Alcotest.(check (option (float 1e-6))) "lag = detection to repair" (Some 500.0) s.max
  | None -> Alcotest.fail "no anti-entropy lag stream");
  Alcotest.(check (option (float 1e-9)))
    "gauge back to zero" (Some 0.0)
    (Simkit.Metrics.gauge metrics "cluster_divergent_replicas" ~labels:[]);
  Alcotest.(check bool) "divergent checks counted" true
    (Simkit.Metrics.counter metrics "cluster_digest_checks_total"
       ~labels:[ ("result", "divergent") ]
    > 0);
  (* A second drift after convergence opens a second episode: a new edge. *)
  ignore
    (Nearby.Server.join (Nearby.Cluster.server_of cluster 1) ~peer:8
       ~attach_router:fx.map.leaves.(1));
  ignore (Nearby.Cluster.digest_check cluster);
  Alcotest.(check int) "second episode, second edge" 2
    (List.length (events_with ~detail:"divergence" recorder))

(* --- The digest gate saves snapshot transfers --------------------------- *)

let kind_bytes metrics kind =
  Simkit.Metrics.series metrics
  |> List.fold_left
       (fun acc (name, labels, _) ->
         if name = "wire_bytes_total" && List.assoc_opt "kind" labels = Some kind then
           acc + Simkit.Metrics.counter metrics name ~labels
         else acc)
       0

let test_digest_gate_saves_snapshot_bytes () =
  let fx = fixture ~seed:43 () in
  let metrics = Simkit.Metrics.create () in
  Simkit.Transport.set_wire_sinks ~metrics fx.transport;
  let cluster = make_cluster fx in
  let rpc = Simkit.Rpc.create ~config:rpc_config fx.transport in
  let protocol = Nearby.Protocol.create_resilient ~rpc cluster in
  let _, failed = run_joins fx protocol ~peers:10 ~k:3 ~horizon:30_000.0 in
  Alcotest.(check int) "loss-free joins all land" 0 failed;
  let skipped () = Simkit.Trace.counter (Nearby.Cluster.trace cluster) "cluster_sync_skipped" in
  let restores () = Simkit.Trace.counter (Nearby.Cluster.trace cluster) "cluster_sync_restores" in
  (* Healthy fleet: every straggler's digest matches the source, so the
     round moves no snapshot bytes at all. *)
  Nearby.Cluster.sync_round cluster;
  Simkit.Engine.run fx.engine ~until:35_000.0;
  Alcotest.(check int) "both stragglers gated" 2 (skipped ());
  Alcotest.(check int) "no restores on a healthy fleet" 0 (restores ());
  Alcotest.(check int) "no snapshot bytes on the wire" 0 (kind_bytes metrics "snapshot");
  (* Diverge one replica; only then does anti-entropy pay for transfers. *)
  ignore
    (Nearby.Server.join (Nearby.Cluster.server_of cluster 0) ~peer:99
       ~attach_router:fx.map.leaves.(0));
  Nearby.Cluster.sync_round cluster;
  Simkit.Engine.run fx.engine ~until:40_000.0;
  Alcotest.(check int) "divergent stragglers restored" 2 (restores ());
  Alcotest.(check bool) "snapshot bytes only for real drift" true
    (kind_bytes metrics "snapshot" > 0);
  Nearby.Cluster.check_invariants cluster;
  Alcotest.(check (list int)) "repair reconverged the fleet" []
    (Nearby.Cluster.digest_check cluster)

(* --- The health experiment end to end ----------------------------------- *)

let test_health_exp_invariants () =
  let config =
    {
      Eval.Health_exp.quick_config with
      routers = 400;
      peers = 120;
      arrival_window_ms = 4000.0;
      sync_period_ms = 1000.0;
      check_period_ms = 100.0;
      seed = 3;
    }
  in
  let r = Eval.Health_exp.run config in
  Alcotest.(check int) "every join issued" config.peers r.joins;
  Alcotest.(check int) "joins accounted" r.joins (r.completed + r.failed);
  Alcotest.(check bool) "losses retried to completion" true (r.completion_rate >= 0.95);
  Alcotest.(check int) "check results partition the checks" r.digest_checks
    (r.checks_consistent + r.checks_divergent);
  Alcotest.(check bool) "the burst caused divergence" true (r.divergence_episodes >= 1);
  Alcotest.(check int) "every episode closed" r.divergence_episodes r.convergence_episodes;
  Alcotest.(check int) "one lag sample per closed episode" r.divergence_episodes r.lag_count;
  Alcotest.(check bool) "detection latency sane" true
    (Float.is_nan r.detection_latency_ms || r.detection_latency_ms >= 0.0);
  Alcotest.(check bool) "digest gate saved transfers" true (r.sync_skipped >= 1);
  Alcotest.(check int) "converged at the horizon" 0 r.final_divergent;
  Alcotest.(check bool) "episodes balanced and closed" true r.converged;
  Alcotest.(check bool) "reports aged" true (r.report_age_oldest_ms >= r.report_age_p50_ms);
  Alcotest.(check bool) "every completion stamped somewhere" true
    (r.refresh_total >= r.completed)

(* --- The dashboard's health panel --------------------------------------- *)

let test_fleet_health_panel () =
  let config = { Eval.Fleet_obs.quick_config with routers = 400; peers = 40; seed = 4 } in
  let r, t = Eval.Fleet_obs.run config in
  Alcotest.(check bool) "digest polls ran" true (r.digest_checks > 0);
  Alcotest.(check int) "healthy fleet never diverges at rest" 0 r.divergent_replicas;
  Alcotest.(check bool) "report ages observed" true (r.report_age_oldest_ms >= 0.0);
  let frame = Eval.Fleet_obs.render t in
  let contains needle =
    let nl = String.length needle and hl = String.length frame in
    let rec scan i = i + nl <= hl && (String.sub frame i nl = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "frame mentions %S" needle) true (contains needle))
    [ "[health]"; "digest checks"; "staleness" ]

let suite =
  ( "health",
    [
      Alcotest.test_case "staleness tracking" `Quick test_staleness_tracking;
      Alcotest.test_case "divergence edges once per episode" `Quick
        test_divergence_edges_once_per_episode;
      Alcotest.test_case "digest gate saves snapshot bytes" `Quick
        test_digest_gate_saves_snapshot_bytes;
      Alcotest.test_case "health_exp invariants" `Slow test_health_exp_invariants;
      Alcotest.test_case "fleet health panel" `Quick test_fleet_health_panel;
    ] )
