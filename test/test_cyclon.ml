(* Cyclon peer sampling. *)

open Nearby

let make ~n ~seed = Cyclon.create Cyclon.default_params ~n ~rng:(Prelude.Prng.create seed)

let test_create_validation () =
  let rng = Prelude.Prng.create 1 in
  Alcotest.check_raises "view too big"
    (Invalid_argument "Cyclon.create: need 0 < shuffle_length <= view_size < n") (fun () ->
      ignore (Cyclon.create { view_size = 10; shuffle_length = 4 } ~n:10 ~rng));
  Alcotest.check_raises "shuffle too big"
    (Invalid_argument "Cyclon.create: need 0 < shuffle_length <= view_size < n") (fun () ->
      ignore (Cyclon.create { view_size = 4; shuffle_length = 5 } ~n:100 ~rng))

let test_bootstrap_views () =
  let t = make ~n:20 ~seed:2 in
  Alcotest.(check int) "node count" 20 (Cyclon.node_count t);
  Alcotest.(check (list int)) "ring bootstrap" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (Cyclon.view t 0);
  Cyclon.check_invariants t

let test_invariants_over_rounds () =
  let t = make ~n:60 ~seed:3 in
  for _ = 1 to 30 do
    Cyclon.round t;
    Cyclon.check_invariants t
  done;
  (* Views stay full: the shuffle conserves entry counts. *)
  for i = 0 to 59 do
    Alcotest.(check int)
      (Printf.sprintf "node %d view full" i)
      Cyclon.default_params.view_size
      (List.length (Cyclon.view t i))
  done

let test_mixing_balances_indegree () =
  let t = make ~n:100 ~seed:4 in
  let spread degs =
    let s = Prelude.Stats.create () in
    Array.iter (fun d -> Prelude.Stats.add s (float_of_int d)) degs;
    Prelude.Stats.stddev s
  in
  (* Ring bootstrap is perfectly balanced; a few rounds perturb it, many
     rounds keep it tight.  The meaningful check: after heavy mixing the
     in-degree spread stays small relative to the mean (Cyclon's headline
     property). *)
  for _ = 1 to 40 do
    Cyclon.round t
  done;
  let degs = Cyclon.indegrees t in
  let mean = float_of_int (Array.fold_left ( + ) 0 degs) /. 100.0 in
  Alcotest.(check (float 1e-9)) "mean indegree = view size" (float_of_int Cyclon.default_params.view_size) mean;
  Alcotest.(check bool)
    (Printf.sprintf "spread %.2f below mean" (spread degs))
    true
    (spread degs < mean);
  let max_deg = Array.fold_left max 0 degs and min_deg = Array.fold_left min max_int degs in
  Alcotest.(check bool)
    (Printf.sprintf "degrees in a tight band (%d..%d)" min_deg max_deg)
    true
    (max_deg <= 4 * Cyclon.default_params.view_size && min_deg >= 1)

let test_mixing_breaks_the_ring () =
  let t = make ~n:100 ~seed:5 in
  for _ = 1 to 20 do
    Cyclon.round t
  done;
  (* After mixing, node 0's view should not be its ring successors. *)
  Alcotest.(check bool) "view mixed away from the ring" true
    (Cyclon.view t 0 <> [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_sample () =
  let t = make ~n:30 ~seed:6 in
  let rng = Prelude.Prng.create 7 in
  for _ = 1 to 5 do
    Cyclon.round t
  done;
  for i = 0 to 29 do
    match Cyclon.sample t i ~rng with
    | Some p ->
        Alcotest.(check bool) "sample from view" true (List.mem p (Cyclon.view t i));
        Alcotest.(check bool) "not self" true (p <> i)
    | None -> Alcotest.fail "view cannot be empty"
  done

let test_deterministic () =
  let run seed =
    let t = make ~n:40 ~seed in
    for _ = 1 to 10 do
      Cyclon.round t
    done;
    List.init 40 (Cyclon.view t)
  in
  Alcotest.(check bool) "same seed same views" true (run 8 = run 8);
  Alcotest.(check bool) "different seed differs" true (run 8 <> run 9)

let suite =
  ( "cyclon",
    [
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "bootstrap views" `Quick test_bootstrap_views;
      Alcotest.test_case "invariants over rounds" `Quick test_invariants_over_rounds;
      Alcotest.test_case "indegree balance" `Quick test_mixing_balances_indegree;
      Alcotest.test_case "ring broken by mixing" `Quick test_mixing_breaks_the_ring;
      Alcotest.test_case "sample" `Quick test_sample;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
    ] )
