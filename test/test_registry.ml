(* The unified registry seam: every backend must answer identically, keep
   its invariants under churn, and round-trip through snapshot/restore. *)

open Nearby

let specs = Eval.Backends.all
let backend_of = Eval.Backends.backend
let spec_name = Eval.Backends.to_string

(* A registration scenario on an arbitrary graph: a landmark, and for every
   candidate attachment router its recorded path toward the landmark. *)
type scenario = {
  graph : Topology.Graph.t;
  landmark : Topology.Graph.node;
  route_of : Topology.Graph.node -> Topology.Graph.node array;
}

let scenario_of_graph graph ~seed =
  let oracle = Traceroute.Route_oracle.create graph in
  let rng = Prelude.Prng.create (seed + 101) in
  let landmark = (Landmark.place graph Landmark.Medium_degree ~count:1 ~rng).(0) in
  {
    graph;
    landmark;
    route_of =
      (fun src -> Array.of_list (Traceroute.Route_oracle.route oracle ~src ~dst:landmark));
  }

let waxman_scenario ~seed =
  let graph, _ = Topology.Gen_waxman.generate ~nodes:120 ~alpha:0.3 ~beta:0.25 ~seed in
  scenario_of_graph graph ~seed

let transit_stub_scenario ~seed =
  scenario_of_graph
    (Topology.Gen_transit_stub.generate Topology.Gen_transit_stub.default_params ~seed)
    ~seed

let fresh_registries sc = List.map (fun spec -> Registry_intf.create (backend_of spec) ~landmark:sc.landmark) specs

let attach_router sc rng = Prelude.Prng.int rng (Topology.Graph.node_count sc.graph)

(* Same call against every backend; all must agree with the first (the path
   tree).  Answers are fully ordered by (dtree, peer id), so agreement is
   exact list equality — tie order included. *)
let check_agreement ~what replies =
  match replies with
  | [] -> ()
  | (_, reference) :: rest ->
      List.iter
        (fun (name, reply) ->
          Alcotest.(check (list (pair int int))) (Printf.sprintf "%s: %s" name what) reference reply)
        rest

(* --- Cross-backend equivalence on random topologies -------------------- *)

let qcheck_equivalence =
  QCheck.Test.make ~name:"all backends return identical neighbor sets" ~count:15
    QCheck.(make Gen.(pair small_nat bool))
    (fun (seed, waxman) ->
      let sc = if waxman then waxman_scenario ~seed else transit_stub_scenario ~seed in
      let rng = Prelude.Prng.create (seed + 7) in
      let regs = fresh_registries sc in
      let peers = 35 in
      for peer = 0 to peers - 1 do
        let routers = sc.route_of (attach_router sc rng) in
        List.iter (fun reg -> Registry_intf.insert reg ~peer ~routers) regs
      done;
      (* Member queries: everyone's k nearest. *)
      for peer = 0 to peers - 1 do
        check_agreement
          ~what:(Printf.sprintf "query_member peer %d" peer)
          (List.map2
             (fun spec reg -> (spec_name spec, Registry_intf.query_member reg ~peer ~k:5))
             specs regs)
      done;
      (* Newcomer queries from paths never registered, several k values. *)
      for trial = 0 to 9 do
        let routers = sc.route_of (attach_router sc rng) in
        let k = 1 + (trial mod 7) in
        check_agreement
          ~what:(Printf.sprintf "newcomer query %d" trial)
          (List.map2
             (fun spec reg -> (spec_name spec, Registry_intf.query reg ~routers ~k ()))
             specs regs)
      done;
      (* dtree must also agree pairwise. *)
      for p1 = 0 to 9 do
        for p2 = 0 to 9 do
          match List.map (fun reg -> Registry_intf.dtree reg p1 p2) regs with
          | [] -> ()
          | reference :: rest ->
              List.iter
                (fun d ->
                  Alcotest.(check (option int))
                    (Printf.sprintf "dtree %d %d" p1 p2)
                    reference d)
                rest
        done
      done;
      List.iter Registry_intf.check_invariants regs;
      true)

(* --- Batch/singleton agreement ----------------------------------------- *)

(* The Domain-parallel sharded scatter is exercised through one dedicated
   module instance: a 2-domain pool works even on a 1-core machine, and
   [parallel_threshold:0] forces every query through the cross-domain
   path.  Created once and reused across qcheck repetitions — the pool is
   persistent by design, and repetition is what would catch a racy
   scatter. *)
let parallel_sharded_backend =
  Sharded_registry.make ~shards:3 ~query_domains:2 ~parallel_threshold:0 ()

let qcheck_batch_agreement =
  QCheck.Test.make ~name:"insert_many/query_many match looped singletons" ~count:15
    QCheck.(make Gen.(pair small_nat bool))
    (fun (seed, waxman) ->
      let sc = if waxman then waxman_scenario ~seed else transit_stub_scenario ~seed in
      let rng = Prelude.Prng.create (seed + 23) in
      let named =
        List.map (fun spec -> (spec_name spec, backend_of spec)) specs
        @ [ ("sharded:3+domains", parallel_sharded_backend) ]
      in
      List.iter
        (fun (name, backend) ->
          let batched = Registry_intf.create backend ~landmark:sc.landmark in
          let looped = Registry_intf.create backend ~landmark:sc.landmark in
          let peers = 30 in
          let entries =
            Array.init peers (fun peer -> (peer, sc.route_of (attach_router sc rng)))
          in
          Registry_intf.insert_many batched entries;
          Array.iter (fun (peer, routers) -> Registry_intf.insert looped ~peer ~routers) entries;
          Registry_intf.check_invariants batched;
          Alcotest.(check int)
            (name ^ ": member count")
            (Registry_intf.member_count looped)
            (Registry_intf.member_count batched);
          (* Newcomer paths, with a per-query-index exclude — the batched
             side must thread the index through correctly. *)
          let queries = Array.init 12 (fun _ -> sc.route_of (attach_router sc rng)) in
          let exclude qi p = (p + qi) mod 5 = 0 in
          let k = 4 in
          let batch = Registry_intf.query_many batched ~queries ~k ~exclude () in
          Array.iteri
            (fun qi routers ->
              Alcotest.(check (list (pair int int)))
                (Printf.sprintf "%s: query %d" name qi)
                (Registry_intf.query looped ~routers ~k ~exclude:(exclude qi) ())
                batch.(qi))
            queries;
          (* Member queries, batched vs looped. *)
          let members = Array.init 10 (fun i -> i * 3 mod peers) in
          let batch = Registry_intf.query_member_many batched ~peers:members ~k in
          Array.iteri
            (fun i peer ->
              Alcotest.(check (list (pair int int)))
                (Printf.sprintf "%s: query_member %d" name peer)
                (Registry_intf.query_member looped ~peer ~k)
                batch.(i))
            members)
        named;
      true)

(* Batch validation is atomic for the tree-based backends: a bad batch
   (duplicate peer inside it) must leave no partial state behind. *)
let test_batch_rejects_duplicates_atomically () =
  let sc = transit_stub_scenario ~seed:6 in
  let rng = Prelude.Prng.create 17 in
  List.iter
    (fun (name, backend) ->
      let reg = Registry_intf.create backend ~landmark:sc.landmark in
      Registry_intf.insert reg ~peer:0 ~routers:(sc.route_of (attach_router sc rng));
      let bad_batches =
        [
          (* Duplicate against the registered population. *)
          [| (1, sc.route_of (attach_router sc rng)); (0, sc.route_of (attach_router sc rng)) |];
          (* Duplicate inside the batch itself. *)
          [| (2, sc.route_of (attach_router sc rng)); (2, sc.route_of (attach_router sc rng)) |];
        ]
      in
      List.iter
        (fun batch ->
          (match Registry_intf.insert_many reg batch with
          | exception Invalid_argument _ -> ()
          | () -> Alcotest.fail (name ^ ": bad batch accepted"));
          Registry_intf.check_invariants reg;
          Alcotest.(check int) (name ^ ": nothing applied") 1 (Registry_intf.member_count reg))
        bad_batches)
    [
      ("tree", (module Path_tree : Registry_intf.S));
      ("sharded:4", Sharded_registry.make ~shards:4 ());
    ]

(* --- Invariants and agreement under churn ------------------------------ *)

let qcheck_churn =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun p -> `Insert (p mod 25)) small_nat);
          (2, map (fun p -> `Remove (p mod 25)) small_nat);
          (2, map (fun p -> `Handover (p mod 25)) small_nat);
        ])
  in
  QCheck.Test.make ~name:"backends agree through insert/remove/handover churn" ~count:15
    QCheck.(make Gen.(pair small_nat (list_size (int_range 1 40) op_gen)))
    (fun (seed, ops) ->
      let sc = transit_stub_scenario ~seed:(seed mod 5) in
      let rng = Prelude.Prng.create (seed + 13) in
      let regs = fresh_registries sc in
      let members = Hashtbl.create 32 in
      List.iter
        (fun op ->
          (match op with
          | `Insert p ->
              let routers = sc.route_of (attach_router sc rng) in
              if Hashtbl.mem members p then
                List.iter
                  (fun reg ->
                    match Registry_intf.insert reg ~peer:p ~routers with
                    | exception Invalid_argument _ -> ()
                    | () -> Alcotest.fail "duplicate insert accepted")
                  regs
              else begin
                List.iter (fun reg -> Registry_intf.insert reg ~peer:p ~routers) regs;
                Hashtbl.replace members p ()
              end
          | `Remove p ->
              if Hashtbl.mem members p then begin
                List.iter (fun reg -> Registry_intf.remove reg p) regs;
                Hashtbl.remove members p
              end
              else
                List.iter
                  (fun reg ->
                    match Registry_intf.remove reg p with
                    | exception Not_found -> ()
                    | () -> Alcotest.fail "unknown remove accepted")
                  regs
          | `Handover p ->
              if Hashtbl.mem members p then begin
                let routers = sc.route_of (attach_router sc rng) in
                List.iter
                  (fun reg ->
                    Registry_intf.remove reg p;
                    Registry_intf.insert reg ~peer:p ~routers)
                  regs
              end);
          List.iter Registry_intf.check_invariants regs;
          match List.map Registry_intf.member_count regs with
          | [] -> ()
          | reference :: rest ->
              List.iter (fun c -> Alcotest.(check int) "member count" reference c) rest)
        ops;
      Hashtbl.iter
        (fun peer () ->
          check_agreement
            ~what:(Printf.sprintf "post-churn query_member %d" peer)
            (List.map2
               (fun spec reg -> (spec_name spec, Registry_intf.query_member reg ~peer ~k:4))
               specs regs))
        members;
      true)

(* --- Content digests ---------------------------------------------------- *)

(* The digest is an XOR over per-entry hashes, so three laws pin it down:
   insertion order cannot matter, every backend must agree on identical
   content, and removing entries must land exactly on the digest of a fresh
   registry holding the remainder. *)
let qcheck_digest =
  QCheck.Test.make ~name:"content digests are order-free and backend-free" ~count:15
    QCheck.(make Gen.(pair small_nat bool))
    (fun (seed, waxman) ->
      let sc = if waxman then waxman_scenario ~seed else transit_stub_scenario ~seed in
      let rng = Prelude.Prng.create (seed + 13) in
      let peers = 30 in
      let entries =
        List.init peers (fun peer -> (peer, sc.route_of (attach_router sc rng)))
      in
      let forward = fresh_registries sc in
      let backward = fresh_registries sc in
      List.iter
        (fun (peer, routers) ->
          List.iter (fun reg -> Registry_intf.insert reg ~peer ~routers) forward)
        entries;
      List.iter
        (fun (peer, routers) ->
          List.iter (fun reg -> Registry_intf.insert reg ~peer ~routers) backward)
        (List.rev entries);
      let reference = Registry_intf.digest (List.hd forward) in
      Alcotest.(check bool) "nonempty digest differs from empty" true
        (reference <> Registry_intf.empty_digest);
      List.iter2
        (fun spec (fwd, bwd) ->
          let name = spec_name spec in
          Alcotest.(check int64)
            (name ^ ": insertion order cannot change the digest")
            (Registry_intf.digest fwd) (Registry_intf.digest bwd);
          Alcotest.(check int64)
            (name ^ ": digest agrees with the path tree's")
            reference (Registry_intf.digest fwd))
        specs
        (List.combine forward backward);
      (* Remove the even peers; the digest must land on the digest of a
         fresh registry that only ever saw the odd ones. *)
      let survivors = List.filter (fun (peer, _) -> peer mod 2 = 1) entries in
      let rebuilt = fresh_registries sc in
      List.iter
        (fun (peer, routers) ->
          List.iter (fun reg -> Registry_intf.insert reg ~peer ~routers) rebuilt)
        survivors;
      List.iter
        (fun reg ->
          List.iter
            (fun (peer, _) -> if peer mod 2 = 0 then Registry_intf.remove reg peer)
            entries)
        forward;
      List.iter2
        (fun spec (reg, fresh) ->
          Alcotest.(check int64)
            (spec_name spec ^ ": removal inverts the digest")
            (Registry_intf.digest fresh) (Registry_intf.digest reg);
          Registry_intf.check_invariants reg)
        specs
        (List.combine forward rebuilt);
      true)

(* --- Snapshot / restore through the unified interface ------------------ *)

let populated_registry spec ~seed ~peers =
  let sc = transit_stub_scenario ~seed in
  let rng = Prelude.Prng.create (seed + 3) in
  let reg = Registry_intf.create (backend_of spec) ~landmark:sc.landmark in
  for peer = 0 to peers - 1 do
    Registry_intf.insert reg ~peer ~routers:(sc.route_of (attach_router sc rng))
  done;
  (sc, reg)

let test_snapshot_roundtrip () =
  List.iter
    (fun spec ->
      let name = spec_name spec in
      let sc, reg = populated_registry spec ~seed:2 ~peers:30 in
      let blob = Registry_intf.snapshot reg in
      Alcotest.(check bool)
        (name ^ ": snapshot deterministic")
        true
        (blob = Registry_intf.snapshot reg);
      match Registry_intf.restore (backend_of spec) blob with
      | Error e -> Alcotest.fail (Printf.sprintf "%s: restore failed: %s" name e)
      | Ok restored ->
          Registry_intf.check_invariants restored;
          Alcotest.(check int)
            (name ^ ": member count")
            (Registry_intf.member_count reg)
            (Registry_intf.member_count restored);
          Alcotest.(check int)
            (name ^ ": landmark")
            (Registry_intf.landmark reg)
            (Registry_intf.landmark restored);
          Alcotest.(check int64)
            (name ^ ": digest preserved")
            (Registry_intf.digest reg)
            (Registry_intf.digest restored);
          for peer = 0 to 29 do
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "%s: peer %d answers preserved" name peer)
              (Registry_intf.query_member reg ~peer ~k:5)
              (Registry_intf.query_member restored ~peer ~k:5)
          done;
          (* The restored registry must keep working. *)
          Registry_intf.insert restored ~peer:100 ~routers:(sc.route_of sc.landmark);
          Registry_intf.remove restored 0;
          Registry_intf.check_invariants restored;
          Alcotest.(check int) (name ^ ": evolved population") 30
            (Registry_intf.member_count restored))
    specs

let test_restore_rejects_corruption () =
  List.iter
    (fun spec ->
      let name = spec_name spec in
      let _, reg = populated_registry spec ~seed:5 ~peers:8 in
      let blob = Registry_intf.snapshot reg in
      let expect_error what data =
        match Registry_intf.restore (backend_of spec) data with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail (Printf.sprintf "%s: %s not rejected" name what)
      in
      (* Every strict prefix must fail cleanly... *)
      for len = 0 to String.length blob - 1 do
        expect_error (Printf.sprintf "prefix of %d bytes" len) (String.sub blob 0 len)
      done;
      (* ...as must trailing garbage and an alien version byte. *)
      expect_error "trailing bytes" (blob ^ "\x00");
      expect_error "bad version"
        ("\xfe" ^ String.sub blob 1 (String.length blob - 1)))
    specs

let test_trace_counters_uniform () =
  List.iter
    (fun spec ->
      let name = spec_name spec in
      let sc = transit_stub_scenario ~seed:4 in
      let trace = Simkit.Trace.create () in
      let reg = Registry_intf.create ~trace (backend_of spec) ~landmark:sc.landmark in
      let rng = Prelude.Prng.create 11 in
      for peer = 0 to 9 do
        Registry_intf.insert reg ~peer ~routers:(sc.route_of (attach_router sc rng))
      done;
      for peer = 0 to 9 do
        ignore (Registry_intf.query_member reg ~peer ~k:3)
      done;
      ignore (Registry_intf.query reg ~routers:(sc.route_of sc.landmark) ~k:3 ());
      Registry_intf.remove reg 0;
      Alcotest.(check int) (name ^ ": inserts traced") 10
        (Simkit.Trace.counter trace "registry_insert");
      Alcotest.(check int) (name ^ ": queries traced") 11
        (Simkit.Trace.counter trace "registry_query");
      Alcotest.(check int) (name ^ ": removes traced") 1
        (Simkit.Trace.counter trace "registry_remove");
      Alcotest.(check int)
        (name ^ ": stats report the population")
        9
        (Option.value ~default:(-1) (List.assoc_opt "members" (Registry_intf.stats reg))))
    specs

let test_backend_names () =
  Alcotest.(check (list string))
    "spec names round-trip through of_string"
    (List.map spec_name specs)
    (List.map
       (fun spec ->
         match Eval.Backends.of_string (spec_name spec) with
         | Ok s -> spec_name s
         | Error e -> e)
       specs);
  (match Eval.Backends.of_string "sharded:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sharded:0 accepted");
  match Eval.Backends.of_string "btree" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend accepted"

let suite =
  ( "registry",
    [
      Alcotest.test_case "snapshot roundtrip per backend" `Quick test_snapshot_roundtrip;
      Alcotest.test_case "restore rejects corruption" `Quick test_restore_rejects_corruption;
      Alcotest.test_case "uniform trace counters" `Quick test_trace_counters_uniform;
      Alcotest.test_case "backend spec parsing" `Quick test_backend_names;
      Alcotest.test_case "batch insert validation is atomic" `Quick
        test_batch_rejects_duplicates_atomically;
      QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) qcheck_equivalence;
      QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) qcheck_batch_agreement;
      QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) qcheck_churn;
      QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) qcheck_digest;
    ] )
