(* Trace (counters, quantile-backed streams, reset-in-place), Span sinks and
   JSONL export, metric exporters, and the instrumented-registry wrapper. *)

open Simkit

(* --- counters --------------------------------------------------------- *)

let test_counters () =
  let t = Trace.create () in
  Alcotest.(check int) "zero default" 0 (Trace.counter t "x");
  Trace.incr t "x";
  Trace.incr t "x";
  Trace.add_count t "y" 5;
  Alcotest.(check int) "incr" 2 (Trace.counter t "x");
  Alcotest.(check (list (pair string int))) "sorted" [ ("x", 2); ("y", 5) ] (Trace.counters t)

let test_counter_ref_survives_reset () =
  (* Regression: Hashtbl.reset orphaned previously handed-out refs, so a
     cached hot-path ref silently counted into a dropped cell. *)
  let t = Trace.create () in
  let r = Trace.counter_ref t "hot" in
  r := !r + 3;
  Alcotest.(check int) "cached ref visible" 3 (Trace.counter t "hot");
  Trace.reset t;
  Alcotest.(check int) "reset zeroes" 0 (Trace.counter t "hot");
  r := !r + 2;
  Alcotest.(check int) "cached ref still live after reset" 2 (Trace.counter t "hot");
  Trace.incr t "hot";
  Alcotest.(check int) "fresh writes share the cell" 3 !r

let test_stat_handle_survives_reset () =
  let t = Trace.create () in
  Trace.observe t "lat" 4.0;
  let s = Option.get (Trace.stat t "lat") in
  Trace.reset t;
  Alcotest.(check int) "cleared in place" 0 (Prelude.Stats.count s);
  Trace.observe t "lat" 9.0;
  Alcotest.(check int) "handle sees new samples" 1 (Prelude.Stats.count s);
  Alcotest.(check (float 1e-9)) "mean restarted" 9.0 (Prelude.Stats.mean s)

(* --- streams ---------------------------------------------------------- *)

let test_observe_stat () =
  let t = Trace.create () in
  Trace.observe t "lat" 1.0;
  Trace.observe t "lat" 3.0;
  (match Trace.stat t "lat" with
  | Some s -> Alcotest.(check (float 1e-9)) "mean" 2.0 (Prelude.Stats.mean s)
  | None -> Alcotest.fail "missing stat");
  Alcotest.(check bool) "unknown stream" true (Trace.stat t "nope" = None);
  Alcotest.(check bool) "unknown summary" true (Trace.summary t "nope" = None)

let test_summary_small_stream () =
  let t = Trace.create () in
  List.iter (Trace.observe t "s") [ 10.0; 20.0; 30.0 ];
  let s = Option.get (Trace.summary t "s") in
  Alcotest.(check int) "count" 3 s.Trace.count;
  Alcotest.(check (float 1e-9)) "exact p50 below warmup" 20.0 s.Trace.p50;
  Alcotest.(check (option (float 1e-9))) "min" (Some 10.0) s.Trace.min;
  Alcotest.(check (option (float 1e-9))) "max" (Some 30.0) s.Trace.max

let test_min_max_opt () =
  let s = Prelude.Stats.create () in
  Alcotest.(check (option (float 1e-9))) "empty min" None (Prelude.Stats.min_opt s);
  Alcotest.(check (option (float 1e-9))) "empty max" None (Prelude.Stats.max_opt s);
  Prelude.Stats.add s 7.0;
  Alcotest.(check (option (float 1e-9))) "min" (Some 7.0) (Prelude.Stats.min_opt s);
  Alcotest.(check (option (float 1e-9))) "max" (Some 7.0) (Prelude.Stats.max_opt s)

let p2_tolerance ~samples ~q ~rel estimate =
  let exact = Prelude.Stats.percentile samples (q *. 100.0) in
  let err = Float.abs (estimate -. exact) /. Float.max 1e-9 (Float.abs exact) in
  Alcotest.(check bool)
    (Printf.sprintf "P² q=%.2f estimate %.3f within %.0f%% of exact %.3f" q estimate (rel *. 100.0)
       exact)
    true (err <= rel)

let test_quantiles_uniform () =
  let t = Trace.create () in
  let rng = Prelude.Prng.create 42 in
  let samples = Array.init 10_000 (fun _ -> Prelude.Prng.float rng 100.0) in
  Array.iter (Trace.observe t "u") samples;
  let s = Option.get (Trace.summary t "u") in
  p2_tolerance ~samples ~q:0.5 ~rel:0.05 s.Trace.p50;
  p2_tolerance ~samples ~q:0.9 ~rel:0.05 s.Trace.p90;
  p2_tolerance ~samples ~q:0.99 ~rel:0.05 s.Trace.p99

let test_quantiles_heavy_tail () =
  (* Pareto-ish: 1 / (1 - u) — the shape latency tails actually have. *)
  let t = Trace.create () in
  let rng = Prelude.Prng.create 11 in
  let samples = Array.init 10_000 (fun _ -> 1.0 /. (1.0 -. Prelude.Prng.float rng 0.999)) in
  Array.iter (Trace.observe t "h") samples;
  let s = Option.get (Trace.summary t "h") in
  p2_tolerance ~samples ~q:0.5 ~rel:0.1 s.Trace.p50;
  p2_tolerance ~samples ~q:0.99 ~rel:0.2 s.Trace.p99

let test_stream_reset_in_place () =
  let t = Trace.create () in
  for _ = 1 to 100 do
    Trace.observe t "s" 5.0
  done;
  Trace.reset t;
  let s = Option.get (Trace.summary t "s") in
  Alcotest.(check int) "count zeroed" 0 s.Trace.count;
  Alcotest.(check bool) "p50 nan when empty" true (Float.is_nan s.Trace.p50);
  Alcotest.(check (option (float 1e-9))) "min null" None s.Trace.min;
  List.iter (Trace.observe t "s") [ 1.0; 2.0; 3.0 ];
  let s = Option.get (Trace.summary t "s") in
  Alcotest.(check (float 1e-9)) "quantiles restart exact" 2.0 s.Trace.p50

let test_log2_hist () =
  let t = Trace.create () in
  List.iter (Trace.observe t "s") [ 0.5; 1.0; 3.0; 1000.0 ];
  let h = Option.get (Trace.hist t "s") in
  Alcotest.(check int) "bucket 0 counts <= 1" 2 (Prelude.Histogram.count h 0);
  Alcotest.(check int) "3.0 in (2,4]" 1 (Prelude.Histogram.count h 2);
  Alcotest.(check int) "1000 in (512,1024]" 1 (Prelude.Histogram.count h 10);
  Alcotest.(check int) "total" 4 (Prelude.Histogram.total h)

let test_quantile_clear () =
  let q = Prelude.Quantile.create ~q:0.5 in
  for i = 1 to 50 do
    Prelude.Quantile.add q (float_of_int i)
  done;
  Prelude.Quantile.clear q;
  Alcotest.(check int) "count zero" 0 (Prelude.Quantile.count q);
  Alcotest.(check bool) "estimate nan" true (Float.is_nan (Prelude.Quantile.estimate q));
  let fresh = Prelude.Quantile.create ~q:0.5 in
  for i = 1 to 200 do
    let v = float_of_int ((i * 7919) mod 100) in
    Prelude.Quantile.add q v;
    Prelude.Quantile.add fresh v
  done;
  Alcotest.(check (float 1e-9))
    "cleared sketch = fresh sketch" (Prelude.Quantile.estimate fresh) (Prelude.Quantile.estimate q)

(* --- spans ------------------------------------------------------------ *)

let test_span_noop () =
  let s = Span.noop in
  Alcotest.(check bool) "disabled" false (Span.enabled s);
  Span.emit s ~name:"x" ~ts:0.0 [];
  Span.advance s 5.0;
  Alcotest.(check (float 1e-9)) "clock pinned" 0.0 (Span.now s);
  Alcotest.(check int) "no events" 0 (Span.event_count s);
  Alcotest.(check string) "empty jsonl" "" (Span.to_jsonl s)

let test_span_buffer () =
  let s = Span.buffer ~pid:3 () in
  Alcotest.(check bool) "enabled" true (Span.enabled s);
  Span.emit s ~name:"join" ~ts:(Span.now s) ~dur:2.5 ~tid:7
    [ ("peer", Span.Int 7); ("rtt", Span.Float 2.5); ("ok", Span.Bool true); ("who", Span.Str "p\"1") ];
  Span.advance s 2.5;
  Span.emit s ~name:"query" ~ts:(Span.now s) ~tid:7 [];
  Alcotest.(check (float 1e-9)) "clock advanced" 2.5 (Span.now s);
  Alcotest.(check int) "two events" 2 (Span.event_count s);
  let lines = String.split_on_char '\n' (String.trim (Span.to_jsonl s)) in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  let first = List.hd lines in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "complete event" true (contains "\"ph\": \"X\"" first);
  Alcotest.(check bool) "pid" true (contains "\"pid\": 3" first);
  Alcotest.(check bool) "ts in microseconds" true (contains "\"ts\": 0" first);
  Alcotest.(check bool) "dur scaled" true (contains "\"dur\": 2500" first);
  Alcotest.(check bool) "escaped string arg" true (contains "\"who\": \"p\\\"1\"" first)

let contains needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_server_spans () =
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let spans = Span.buffer () in
  let server = Nearby.Server.create ~spans oracle ~landmarks:[| d.lmk |] in
  let attach = Eval.Paper_drawing.peer_attach_routers d in
  for peer = 0 to 2 do
    ignore (Nearby.Server.join server ~peer ~attach_router:attach.(peer))
  done;
  ignore (Nearby.Server.neighbors server ~peer:0 ~k:2);
  ignore (Nearby.Server.neighbors server ~peer:1 ~k:2);
  (* Peer 2 never queries: flush must close its join span. *)
  Nearby.Server.flush_spans server;
  let events = Span.events spans in
  let of_peer p = List.filter (fun (e : Span.event) -> e.tid = p) events in
  List.iter
    (fun peer ->
      let evs = of_peer peer in
      let find name = List.find (fun (e : Span.event) -> e.name = name) evs in
      let join = find "join" in
      List.iter
        (fun name ->
          let e = find name in
          Alcotest.(check bool)
            (Printf.sprintf "peer %d: %s starts inside join" peer name)
            true (e.ts >= join.ts);
          Alcotest.(check bool)
            (Printf.sprintf "peer %d: %s ends inside join" peer name)
            true (e.ts +. e.dur <= join.ts +. join.dur +. 1e-9);
          Alcotest.(check bool)
            (Printf.sprintf "peer %d: %s carries probes_spent" peer name)
            true
            (List.mem_assoc "probes_spent" e.args))
        ([ "ping_round"; "traceroute"; "register" ] @ if peer <= 1 then [ "query" ] else []))
    [ 0; 1; 2 ];
  (* A second query must not re-open or re-close the join span. *)
  ignore (Nearby.Server.neighbors server ~peer:0 ~k:2);
  let joins_of_0 =
    List.filter (fun (e : Span.event) -> e.tid = 0 && e.name = "join") (Span.events spans)
  in
  Alcotest.(check int) "one join span per peer" 1 (List.length joins_of_0)

(* --- exporters -------------------------------------------------------- *)

let test_metrics_json () =
  let t = Trace.create () in
  Trace.incr t "join";
  List.iter (Trace.observe t "lat_ns") [ 100.0; 200.0; 300.0 ];
  (* An empty stream must serialize as nulls, not raise. *)
  Trace.reset (Trace.create ());
  let empty = Trace.create () in
  Trace.observe empty "never" 1.0;
  Trace.reset empty;
  let doc =
    Export.metrics_json
      ~meta:{ Export.git_rev = "abc"; date_utc = "2026-08-07T00:00:00Z"; seed = Some 1;
              backends = [ "tree" ]; ocaml_version = Sys.ocaml_version;
              word_size = Sys.word_size; domains = 2; extra = [ ("k", "5") ] }
      [ ("server", t); ("empty", empty) ]
  in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains needle doc))
    [
      "\"git_rev\": \"abc\"";
      "\"seed\": 1";
      "\"p50\": 200";
      "\"p90\"";
      "\"p99\"";
      "\"join\": 1";
      "\"log2_hist\"";
      "\"min\": null";
      "\"max\": null";
    ];
  Alcotest.(check bool) "no nan literal" false (contains "nan" doc)

let test_prometheus () =
  let t = Trace.create () in
  Trace.add_count t "probe_packets" 42;
  List.iter (Trace.observe t "path.hops") [ 2.0; 4.0 ];
  let doc = Export.prometheus [ ("server", t) ] in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains needle doc))
    [
      "# TYPE nearby_server_probe_packets_total counter";
      "nearby_server_probe_packets_total 42";
      "# TYPE nearby_server_path_hops summary";
      "nearby_server_path_hops{quantile=\"0.5\"}";
      "nearby_server_path_hops_count 2";
    ]

let test_of_counters () =
  let t = Trace.of_counters [ ("sent", 9); ("dropped_loss", 2) ] in
  Alcotest.(check int) "value carried" 9 (Trace.counter t "sent");
  Alcotest.(check (list (pair string int))) "all present, sorted"
    [ ("dropped_loss", 2); ("sent", 9) ]
    (Trace.counters t);
  let doc = Export.prometheus [ ("transport", t) ] in
  Alcotest.(check bool) "exported as counters" true
    (contains "nearby_transport_sent_total 9" doc)

let test_prometheus_sanitized_exact () =
  (* Lock the exposition output byte for byte for a hostile name: the
     grammar allows [a-zA-Z0-9_] and no leading digit, in the prefix too. *)
  let t = Trace.create () in
  Trace.add_count t "9bad.name" 3;
  let doc = Export.prometheus ~prefix:"2nearby!" [ ("rpc-layer", t) ] in
  let expected =
    "# TYPE _2nearby__rpc_layer__9bad_name_total counter\n"
    ^ "_2nearby__rpc_layer__9bad_name_total 3\n"
  in
  Alcotest.(check string) "exposition locked" expected doc

let test_prometheus_empty_stream_nan () =
  let t = Trace.create () in
  Trace.observe t "lat" 1.0;
  Trace.reset t;
  let doc = Export.prometheus [ ("s", t) ] in
  (* An empty stream stays visible with NaN samples rather than vanishing. *)
  Alcotest.(check bool) "series present" true (contains "nearby_s_lat{quantile=\"0.5\"}" doc);
  Alcotest.(check bool) "NaN spelled for Prometheus" true (contains "NaN" doc);
  Alcotest.(check bool) "count still numeric" true (contains "nearby_s_lat_count 0" doc)

let test_metrics_json_timeseries_key () =
  let t = Trace.create () in
  Trace.incr t "x";
  let ts = Timeseries.create ~window_ms:100.0 () in
  Timeseries.observe ts "join_ms" ~now:10.0 5.0;
  Timeseries.observe ts "join_ms" ~now:250.0 7.0;
  let doc = Export.metrics_json ~timeseries:[ ("run", ts) ] [ ("server", t) ] in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains needle doc))
    [ "\"timeseries\""; "\"run\""; "\"window_ms\": 100"; "\"join_ms\""; "null" ];
  let no_ts = Export.metrics_json [ ("server", t) ] in
  Alcotest.(check bool) "key absent when no series given" false (contains "timeseries" no_ts)

(* --- instrumented registry ------------------------------------------- *)

let test_instrumented_registry () =
  let metrics = Trace.create () in
  let tick = ref 0.0 in
  let clock () =
    tick := !tick +. 500.0;
    !tick
  in
  let backend =
    Nearby.Instrumented_registry.make ~clock ~metrics (module Nearby.Path_tree)
  in
  let lmk = 99 in
  let reg = Nearby.Registry_intf.create backend ~landmark:lmk in
  Nearby.Registry_intf.insert reg ~peer:0 ~routers:[| 1; 5; lmk |];
  Nearby.Registry_intf.insert reg ~peer:1 ~routers:[| 2; 5; lmk |];
  let answer = Nearby.Registry_intf.query_member reg ~peer:0 ~k:1 in
  Alcotest.(check (list (pair int int))) "answers pass through" [ (1, 2) ] answer;
  Nearby.Registry_intf.remove reg 1;
  let summary name = Option.get (Trace.summary metrics name) in
  let ins = summary Nearby.Instrumented_registry.insert_ns in
  Alcotest.(check int) "two timed inserts" 2 ins.Trace.count;
  Alcotest.(check (float 1e-9)) "per-op delta from injected clock" 500.0 ins.Trace.p50;
  Alcotest.(check int) "one timed query" 1 (summary Nearby.Instrumented_registry.query_ns).Trace.count;
  Alcotest.(check int) "one timed remove" 1 (summary Nearby.Instrumented_registry.remove_ns).Trace.count;
  Alcotest.(check (float 1e-9))
    "candidates recorded" 1.0
    (summary Nearby.Instrumented_registry.query_candidates).Trace.p50

let test_wrap_disabled_is_identity () =
  let backend = (module Nearby.Path_tree : Nearby.Registry_intf.S) in
  let wrapped = Nearby.Instrumented_registry.wrap backend in
  Alcotest.(check bool) "physically the same module" true (wrapped == backend)

let suite =
  ( "trace",
    [
      Alcotest.test_case "counters" `Quick test_counters;
      Alcotest.test_case "counter_ref survives reset" `Quick test_counter_ref_survives_reset;
      Alcotest.test_case "stat handle survives reset" `Quick test_stat_handle_survives_reset;
      Alcotest.test_case "observe/stat" `Quick test_observe_stat;
      Alcotest.test_case "summary small stream" `Quick test_summary_small_stream;
      Alcotest.test_case "stats min/max opt" `Quick test_min_max_opt;
      Alcotest.test_case "P2 quantiles uniform" `Quick test_quantiles_uniform;
      Alcotest.test_case "P2 quantiles heavy tail" `Quick test_quantiles_heavy_tail;
      Alcotest.test_case "stream reset in place" `Quick test_stream_reset_in_place;
      Alcotest.test_case "log2 histogram" `Quick test_log2_hist;
      Alcotest.test_case "quantile clear" `Quick test_quantile_clear;
      Alcotest.test_case "span noop" `Quick test_span_noop;
      Alcotest.test_case "span buffer + jsonl" `Quick test_span_buffer;
      Alcotest.test_case "server join/query spans" `Quick test_server_spans;
      Alcotest.test_case "metrics json export" `Quick test_metrics_json;
      Alcotest.test_case "prometheus export" `Quick test_prometheus;
      Alcotest.test_case "of_counters adapter" `Quick test_of_counters;
      Alcotest.test_case "prometheus sanitized exact" `Quick test_prometheus_sanitized_exact;
      Alcotest.test_case "prometheus empty stream" `Quick test_prometheus_empty_stream_nan;
      Alcotest.test_case "metrics json timeseries key" `Quick test_metrics_json_timeseries_key;
      Alcotest.test_case "instrumented registry timing" `Quick test_instrumented_registry;
      Alcotest.test_case "wrap disabled = identity" `Quick test_wrap_disabled_is_identity;
    ] )
