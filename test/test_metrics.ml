(* Labeled metrics: series identity, cardinality bound, merging, the
   labeled exporters, and the fleet-wide acceptance scenario. *)

open Simkit

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub haystack i m = needle || scan (i + 1)) in
  scan 0

let check_has label text sub =
  Alcotest.(check bool) (Printf.sprintf "%s: %s" label sub) true (contains text sub)

let test_canonical_key () =
  Alcotest.(check string) "bare name" "join_ms" (Metrics.canonical_key "join_ms" []);
  Alcotest.(check string) "labels sorted"
    "join_ms{replica=\"2\",zone=\"eu\"}"
    (Metrics.canonical_key "join_ms" [ ("zone", "eu"); ("replica", "2") ]);
  Alcotest.(check string) "values escaped"
    "m{k=\"a\\\"b\\\\c\"}"
    (Metrics.canonical_key "m" [ ("k", "a\"b\\c") ]);
  (match Metrics.canonical_key "m" [ ("k", "1"); ("k", "2") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate label keys accepted")

let test_label_order_insensitive () =
  let m = Metrics.create () in
  Metrics.incr m "hits" ~labels:[ ("a", "1"); ("b", "2") ];
  Metrics.incr m "hits" ~labels:[ ("b", "2"); ("a", "1") ];
  Alcotest.(check int) "one series, two increments" 2
    (Metrics.counter m "hits" ~labels:[ ("a", "1"); ("b", "2") ]);
  Alcotest.(check int) "series count" 1 (Metrics.series_count m "hits")

let test_counter_stream_gauge_roundtrip () =
  let m = Metrics.create () in
  let l = [ ("outcome", "ok") ] in
  Metrics.add_count m "rpc_outcomes" ~labels:l 5;
  Metrics.incr m "rpc_outcomes" ~labels:l;
  Alcotest.(check int) "counter" 6 (Metrics.counter m "rpc_outcomes" ~labels:l);
  Alcotest.(check int) "unwritten counter" 0
    (Metrics.counter m "rpc_outcomes" ~labels:[ ("outcome", "timeout") ]);
  List.iter (fun v -> Metrics.observe m "join_ms" ~labels:l v) [ 10.0; 20.0; 30.0 ];
  (match Metrics.summary m "join_ms" ~labels:l with
  | None -> Alcotest.fail "stream summary missing"
  | Some s ->
      Alcotest.(check int) "stream count" 3 s.count;
      Alcotest.(check (float 1e-9)) "stream mean" 20.0 s.mean);
  (match Metrics.quantile m "join_ms" ~labels:l 0.5 with
  | None -> Alcotest.fail "stream quantile missing"
  | Some v ->
      Alcotest.(check bool) "median near 20" true
        (Float.abs (v -. 20.0) <= (Prelude.Sketch.default_alpha *. 20.0) +. 1e-9));
  Metrics.set m "members" ~labels:l 41.0;
  Metrics.set m "members" ~labels:l 42.0;
  Alcotest.(check (option (float 1e-9))) "gauge last-wins" (Some 42.0)
    (Metrics.gauge m "members" ~labels:l);
  Alcotest.(check (option (float 1e-9))) "unwritten gauge" None
    (Metrics.gauge m "members" ~labels:[ ("outcome", "timeout") ])

let test_cardinality_cap () =
  let m = Metrics.create ~max_series_per_name:4 () in
  for i = 1 to 10 do
    Metrics.incr m "per_peer" ~labels:[ ("peer", string_of_int i) ]
  done;
  (* The cap bounds the real series; the reserved overflow series rides on
     top, so storage stays at cap + 1 no matter how many label sets show
     up. *)
  Alcotest.(check int) "capped series count" 5 (Metrics.series_count m "per_peer");
  Alcotest.(check int) "overflow absorbed the rest" 6
    (Metrics.counter m "per_peer" ~labels:Metrics.overflow_labels);
  Alcotest.(check int) "rerouted writes counted" 6 (Metrics.overflow_routed m);
  (* A name that stays under the cap is unaffected. *)
  Metrics.incr m "small" ~labels:[ ("x", "1") ];
  Alcotest.(check int) "other name untouched" 1
    (Metrics.counter m "small" ~labels:[ ("x", "1") ])

let test_merge_trace_under_label () =
  let flat = Trace.create () in
  Trace.add_count flat "join" 3;
  List.iter (Trace.observe flat "join_ms") [ 5.0; 15.0 ];
  let m = Metrics.create () in
  Metrics.merge_trace m ~labels:[ ("replica", "2") ] flat;
  Alcotest.(check int) "counter filed under label" 3
    (Metrics.counter m "join" ~labels:[ ("replica", "2") ]);
  (match Metrics.summary m "join_ms" ~labels:[ ("replica", "2") ] with
  | None -> Alcotest.fail "stream not filed"
  | Some s -> Alcotest.(check int) "samples carried" 2 s.count)

let test_merge_into () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "hits" ~labels:[ ("replica", "0") ];
  Metrics.add_count b "hits" ~labels:[ ("replica", "0") ] 2;
  Metrics.incr b "hits" ~labels:[ ("replica", "1") ];
  Metrics.set a "members" ~labels:[] 10.0;
  Metrics.set b "members" ~labels:[] 99.0;
  Metrics.merge_into ~into:a b;
  Alcotest.(check int) "counters add" 3 (Metrics.counter a "hits" ~labels:[ ("replica", "0") ]);
  Alcotest.(check int) "new series appear" 1
    (Metrics.counter a "hits" ~labels:[ ("replica", "1") ]);
  Alcotest.(check (option (float 1e-9))) "gauge takes src value" (Some 99.0)
    (Metrics.gauge a "members" ~labels:[]);
  (* src unchanged *)
  Alcotest.(check int) "src untouched" 2 (Metrics.counter b "hits" ~labels:[ ("replica", "0") ])

let test_prometheus_labeled () =
  let m = Metrics.create () in
  Metrics.add_count m "rpc_outcomes" ~labels:[ ("outcome", "ok") ] 12;
  List.iter (fun v -> Metrics.observe m "join_ms" ~labels:[ ("replica", "0") ] v)
    [ 1.0; 2.0; 3.0 ];
  Metrics.set m "shard_members" ~labels:[ ("shard", "1") ] 7.0;
  let text = Export.prometheus_labeled [ ("fleet", m) ] in
  check_has "counter line" text "nearby_fleet_rpc_outcomes_total{outcome=\"ok\"} 12";
  check_has "stream count line" text "nearby_fleet_join_ms_count{replica=\"0\"} 3";
  check_has "quantile label appended" text "quantile=\"0.99\"";
  check_has "gauge line" text "nearby_fleet_shard_members{shard=\"1\"} 7";
  let json = Export.labeled_json m in
  check_has "json series array" json "\"series\"";
  check_has "json nested labels" json "\"labels\"";
  check_has "json overflow counter" json "\"overflow_routed\""

(* Label values straight from hostile input — quotes, backslashes,
   newlines — must round-trip through the exposition: one sample per
   line, escapes per the exposition grammar, and a parse of the emitted
   line recovers the original values byte for byte. *)
let parse_prom_sample line =
  let brace = String.index line '{' in
  let name = String.sub line 0 brace in
  let rec labels acc j =
    let eq = String.index_from line j '=' in
    let key = String.sub line j (eq - j) in
    if line.[eq + 1] <> '"' then Alcotest.failf "no opening quote in %S" line;
    let buf = Buffer.create 16 in
    let rec value k =
      match line.[k] with
      | '\\' ->
          (match line.[k + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | c -> Buffer.add_char buf c);
          value (k + 2)
      | '"' -> k + 1
      | c ->
          Buffer.add_char buf c;
          value (k + 1)
    in
    let after = value (eq + 2) in
    let acc = (key, Buffer.contents buf) :: acc in
    match line.[after] with
    | ',' -> labels acc (after + 1)
    | '}' -> List.rev acc
    | c -> Alcotest.failf "bad separator %C in %S" c line
  in
  (name, labels [] (brace + 1))

let test_prometheus_labeled_escaping () =
  let m = Metrics.create () in
  let path = "C:\\temp\\\"quoted\"" and note = "line1\nline2" in
  Metrics.add_count m "wire_bytes" ~labels:[ ("path", path); ("note", note) ] 7;
  let text = Export.prometheus_labeled [ ("fleet", m) ] in
  let sample =
    match
      List.find_opt
        (fun l -> String.length l > 0 && l.[0] <> '#' && contains l "wire_bytes_total")
        (String.split_on_char '\n' text)
    with
    | Some l -> l
    | None -> Alcotest.failf "no wire_bytes_total sample in %S" text
  in
  (* The newline in the value was escaped — the sample stayed one line. *)
  check_has "escaped newline" sample "\\n";
  check_has "escaped quote" sample "\\\"";
  check_has "escaped backslash" sample "\\\\";
  let name, labels = parse_prom_sample sample in
  Alcotest.(check string) "metric name" "nearby_fleet_wire_bytes_total" name;
  Alcotest.(check string) "quoted/backslashed value round-trips" path
    (List.assoc "path" labels);
  Alcotest.(check string) "newline value round-trips" note (List.assoc "note" labels)

(* Every BENCH_*.json emitter stamps through Export.bench_json, so all
   five artifacts carry exactly the same meta key set no matter which
   optional knobs a bench supplies — the per-bench parameters live under
   the single nested "params" object, never as ad-hoc top-level keys. *)
let test_bench_json_meta_keys () =
  let expected =
    [ "backends"; "date_utc"; "domains"; "git_rev"; "ocaml_version"; "params"; "seed"; "word_size" ]
  in
  let meta_keys doc_str =
    let doc = Json.parse_exn doc_str in
    match Json.member "meta" doc with
    | Some meta -> List.sort compare (Json.keys meta)
    | None -> Alcotest.failf "no meta in %s" doc_str
  in
  Alcotest.(check (list string))
    "all knobs" expected
    (meta_keys
       (Export.bench_json ~seed:1 ~backends:[ "tree" ]
          ~params:[ ("peers", "10"); ("loss", "0.3") ]
          [ ("wire", "{}") ]));
  Alcotest.(check (list string))
    "no knobs" expected
    (meta_keys (Export.bench_json [ ("runs", "[]") ]))

(* The acceptance scenario: a 3-replica cluster over sharded:4 exports one
   merged fleet-wide trace whose per-label p99s and merged p99 stay within
   the documented sketch error bound of the per-replica source traces. *)
let test_fleet_merged_trace_acceptance () =
  let config =
    {
      Eval.Fleet_obs.quick_config with
      routers = 400;
      peers = 60;
      replicas = 3;
      shards = 4;
      seed = 5;
    }
  in
  let r, t = Eval.Fleet_obs.run config in
  Alcotest.(check int) "all joins complete" config.peers r.completed;
  Alcotest.(check int) "no failures" 0 r.failed;
  let cluster = Eval.Fleet_obs.cluster t in
  Alcotest.(check int) "three replicas" 3 (Nearby.Cluster.replica_count cluster);
  let fleet = Eval.Fleet_obs.fleet_trace t in
  Alcotest.(check bool) "fleet stream is merged" true (Trace.is_merged fleet "join_ms");
  let bound = 2.0 *. Prelude.Sketch.default_alpha in
  (* Each replica's labeled scrape answers within the sketch bound of the
     replica's own source trace. *)
  let scraped = Eval.Fleet_obs.scrape t in
  for i = 0 to 2 do
    let labeled =
      match
        Metrics.quantile scraped "join_ms" ~labels:[ ("replica", string_of_int i) ] 0.99
      with
      | Some v -> v
      | None -> Alcotest.failf "replica %d: no labeled p99" i
    in
    let source =
      match
        Trace.sketch_quantile (Nearby.Server.trace (Nearby.Cluster.server_of cluster i))
          "join_ms" 0.99
      with
      | Some v -> v
      | None -> Alcotest.failf "replica %d: no source p99" i
    in
    Alcotest.(check bool)
      (Printf.sprintf "replica %d labeled p99 %.3f within bound of source %.3f" i labeled
         source)
      true
      (Float.abs (labeled -. source) <= (bound *. Float.abs source) +. 1e-9)
  done;
  (* The merged fleet p99 lands inside the per-replica envelope, stretched
     by the sketch bound. *)
  let merged =
    match Trace.sketch_quantile fleet "join_ms" 0.99 with
    | Some v -> v
    | None -> Alcotest.fail "no merged fleet p99"
  in
  Alcotest.(check (float 1e-9)) "result exposes the merged p99" merged r.fleet_join_p99_ms;
  let lo = Array.fold_left Float.min infinity r.replica_join_p99_ms in
  let hi = Array.fold_left Float.max neg_infinity r.replica_join_p99_ms in
  Alcotest.(check bool)
    (Printf.sprintf "merged p99 %.3f within [%.3f, %.3f] envelope" merged lo hi)
    true
    (merged >= lo *. (1.0 -. bound) -. 1e-9 && merged <= hi *. (1.0 +. bound) +. 1e-9);
  (* The dashboard renders every panel headlessly, escape-free. *)
  let frame = Eval.Fleet_obs.render t in
  List.iter (check_has "render" frame)
    [
      "nearby fleet top";
      "[ops/s";
      "[join latency";
      "[slo]";
      "[rpc]";
      "[wire]";
      "[admission";
      "[runtime]";
      "[shards]";
    ];
  Alcotest.(check bool) "no escape sequences" true (not (String.contains frame '\027'));
  (* The generously-provisioned front door admits everything. *)
  let totals = Nearby.Admission.totals (Eval.Fleet_obs.admission t) in
  Alcotest.(check int) "admission passes every join" config.peers
    totals.Nearby.Admission.admitted;
  Alcotest.(check int) "healthy fleet sheds nothing" 0 totals.Nearby.Admission.shed_total

let suite =
  ( "metrics",
    [
      Alcotest.test_case "canonical key" `Quick test_canonical_key;
      Alcotest.test_case "label order insensitive" `Quick test_label_order_insensitive;
      Alcotest.test_case "counter/stream/gauge roundtrip" `Quick
        test_counter_stream_gauge_roundtrip;
      Alcotest.test_case "cardinality cap" `Quick test_cardinality_cap;
      Alcotest.test_case "merge_trace under label" `Quick test_merge_trace_under_label;
      Alcotest.test_case "merge_into" `Quick test_merge_into;
      Alcotest.test_case "labeled exporters" `Quick test_prometheus_labeled;
      Alcotest.test_case "exposition escaping round-trips" `Quick
        test_prometheus_labeled_escaping;
      Alcotest.test_case "bench_json meta keys identical" `Quick test_bench_json_meta_keys;
      Alcotest.test_case "fleet merged-trace acceptance" `Slow
        test_fleet_merged_trace_acceptance;
    ] )
