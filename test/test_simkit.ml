(* Engine, Node, Transport, Churn, Trace. *)

open Simkit

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "schedule order preserved" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:0.5 (fun () -> log := "c" :: !log);
      Engine.schedule e ~delay:0.0 (fun () -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "processed" 3 (Engine.processed e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only the early event" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock advanced to the limit" 5.0 (Engine.now e);
  Alcotest.(check int) "one still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "resumes" 2 !fired

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  Engine.schedule e ~delay:1.0 (fun () -> ());
  Alcotest.(check bool) "step executes" true (Engine.step e);
  Alcotest.(check bool) "then empty" false (Engine.step e)

let test_engine_errors () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.0) (fun () -> ()));
  Engine.schedule e ~delay:5.0 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time is in the past")
    (fun () -> Engine.schedule_at e ~time:1.0 (fun () -> ()))

let test_node_lifecycle () =
  let n = Node.create ~id:0 ~attach_router:7 ~now:10.0 in
  Alcotest.(check bool) "joining is live" true (Node.is_live n);
  Alcotest.(check bool) "setup delay nan while joining" true (Float.is_nan (Node.setup_delay n));
  Node.mark_up n ~now:25.0;
  Alcotest.(check (float 1e-9)) "setup delay" 15.0 (Node.setup_delay n);
  Node.depart n;
  Alcotest.(check bool) "departed not live" false (Node.is_live n);
  Alcotest.check_raises "cannot re-depart" (Invalid_argument "Node 0: expected up or joining, was departed")
    (fun () -> Node.depart n);
  Node.rejoin n ~attach_router:9 ~now:50.0;
  Alcotest.(check int) "moved" 9 n.attach_router;
  Alcotest.(check bool) "rejoining is live" true (Node.is_live n)

let test_node_fail () =
  let n = Node.create ~id:1 ~attach_router:2 ~now:0.0 in
  Node.mark_up n ~now:1.0;
  Node.fail n;
  Alcotest.(check bool) "failed" false (Node.is_live n);
  Alcotest.check_raises "mark_up after fail" (Invalid_argument "Node 1: expected joining, was failed")
    (fun () -> Node.mark_up n ~now:2.0)

let drawing_transport () =
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let e = Engine.create () in
  (d, Transport.create e oracle)

let test_transport_delay () =
  let d, t = drawing_transport () in
  let e = Transport.engine t in
  Alcotest.(check (float 1e-9)) "one-way = hops" 5.0 (Transport.one_way_delay t ~src:d.p1 ~dst:d.lmk);
  let arrived = ref (-1.0) in
  Transport.send t ~src:d.p1 ~dst:d.lmk ~size_bytes:100 (fun () -> arrived := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "delivered after delay" 5.0 !arrived;
  Alcotest.(check int) "counted" 1 (Transport.messages_sent t);
  Alcotest.(check int) "bytes" 100 (Transport.bytes_sent t)

let test_transport_rpc () =
  let d, t = drawing_transport () in
  let e = Transport.engine t in
  let done_at = ref (-1.0) in
  Transport.rpc t ~src:d.p1 ~dst:d.lmk ~request_bytes:50 ~reply_bytes:500 (fun () ->
      done_at := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "full rtt" 10.0 !done_at;
  Alcotest.(check int) "two messages" 2 (Transport.messages_sent t);
  Alcotest.(check int) "both payloads" 550 (Transport.bytes_sent t)

let test_transport_drop_unreachable () =
  let g = Topology.Graph.of_edges ~node_count:3 [ (0, 1) ] in
  let oracle = Traceroute.Route_oracle.create g in
  let e = Engine.create () in
  let t = Transport.create e oracle in
  let delivered = ref false in
  Transport.send t ~src:0 ~dst:2 ~size_bytes:10 (fun () -> delivered := true);
  Engine.run e;
  Alcotest.(check bool) "not delivered" false !delivered;
  Alcotest.(check int) "dropped" 1 (Transport.messages_dropped t)

let test_transport_loss_injection () =
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let e = Engine.create () in
  let rng = Prelude.Prng.create 11 in
  let t = Transport.create ~rng ~loss_prob:0.5 e oracle in
  let delivered = ref 0 in
  for _ = 1 to 200 do
    Transport.send t ~src:d.p1 ~dst:d.p2 ~size_bytes:10 (fun () -> incr delivered)
  done;
  Engine.run e;
  Alcotest.(check int) "delivered + dropped = sent" 200 (!delivered + Transport.messages_dropped t);
  Alcotest.(check bool)
    (Printf.sprintf "roughly half lost (%d delivered)" !delivered)
    true
    (!delivered > 60 && !delivered < 140);
  Alcotest.check_raises "loss without rng" (Invalid_argument "Transport.create: loss_prob needs ~rng")
    (fun () -> ignore (Transport.create ~loss_prob:0.1 e oracle))

let test_transport_drop_buckets () =
  (* The three drop mechanisms are counted separately and sum to the
     back-compat total. *)
  let g = Topology.Graph.of_edges ~node_count:5 [ (0, 1); (1, 2); (2, 3) ] in
  let oracle = Traceroute.Route_oracle.create g in
  let e = Engine.create () in
  let rng = Prelude.Prng.create 3 in
  let t = Transport.create ~rng e oracle in
  let stat name = List.assoc name (Transport.stats t) in
  (* Unreachable: node 4 is isolated. *)
  Transport.send t ~src:0 ~dst:4 ~size_bytes:10 (fun () -> ());
  (* Partition: cut {0, 1} off; a cross-boundary message dies, an
     intra-side one survives. *)
  Transport.set_partition_nodes t [ 0; 1 ];
  let intra = ref false in
  Transport.send t ~src:0 ~dst:1 ~size_bytes:10 (fun () -> intra := true);
  Transport.send t ~src:1 ~dst:2 ~size_bytes:10 (fun () -> ());
  Engine.run e;
  Alcotest.(check bool) "intra-side delivered" true !intra;
  Transport.clear_partition t;
  let healed = ref false in
  Transport.send t ~src:1 ~dst:2 ~size_bytes:10 (fun () -> healed := true);
  Engine.run e;
  Alcotest.(check bool) "healed partition delivers" true !healed;
  (* Loss: certain-loss probability drops everything into its own bucket. *)
  Transport.set_loss_prob t 0.999;
  let lost = ref 0 in
  for _ = 1 to 50 do
    Transport.send t ~src:0 ~dst:1 ~size_bytes:10 (fun () -> ())
  done;
  Engine.run e;
  lost := stat "dropped_loss";
  Alcotest.(check int) "one unreachable drop" 1 (stat "dropped_unreachable");
  Alcotest.(check int) "one partition drop" 1 (stat "dropped_partition");
  Alcotest.(check bool) (Printf.sprintf "loss drops counted (%d)" !lost) true (!lost >= 45);
  Alcotest.(check int) "total = sum of buckets" (!lost + 2) (Transport.messages_dropped t);
  Alcotest.check_raises "set_loss_prob range"
    (Invalid_argument "Transport.set_loss_prob: loss_prob outside [0, 1)") (fun () ->
      Transport.set_loss_prob t 1.0)

let test_transport_set_loss_needs_rng () =
  let g = Topology.Graph.of_edges ~node_count:2 [ (0, 1) ] in
  let oracle = Traceroute.Route_oracle.create g in
  let t = Transport.create (Engine.create ()) oracle in
  Alcotest.check_raises "set_loss_prob without rng"
    (Invalid_argument "Transport.set_loss_prob: loss_prob needs ~rng") (fun () ->
      Transport.set_loss_prob t 0.5)

let test_transport_rpc_loss_independent_per_leg () =
  (* Loss is drawn once per leg: at p = 0.5 an rpc completes with
     probability (1-p)^2 = 0.25, not 1-p = 0.5. *)
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let e = Engine.create () in
  let rng = Prelude.Prng.create 17 in
  let t = Transport.create ~rng ~loss_prob:0.5 e oracle in
  let completed = ref 0 in
  let n = 400 in
  for _ = 1 to n do
    Transport.rpc t ~src:d.p1 ~dst:d.p2 ~request_bytes:10 ~reply_bytes:10 (fun () ->
        incr completed)
  done;
  Engine.run e;
  (* Binomial(400, 0.25): mean 100, stddev ~8.7; +-5 sigma. *)
  Alcotest.(check bool)
    (Printf.sprintf "~quarter complete (%d/400)" !completed)
    true
    (!completed > 57 && !completed < 143)

let spec_exponential =
  {
    Churn.arrival_rate_per_s = 5.0;
    session = Churn.Exponential { mean_ms = 30_000.0 };
    failure_fraction = 0.2;
    mobility_fraction = 0.1;
    horizon_ms = 100_000.0;
  }

let test_churn_generation () =
  let rng = Prelude.Prng.create 8 in
  let sessions = Churn.generate spec_exponential ~rng in
  Alcotest.(check bool) "some sessions" true (List.length sessions > 300);
  let rec check_sorted = function
    | (a : Churn.session) :: (b :: _ as rest) ->
        Alcotest.(check bool) "sorted by join" true (a.join_at <= b.join_at);
        check_sorted rest
    | _ -> ()
  in
  check_sorted sessions;
  List.iter
    (fun (s : Churn.session) ->
      Alcotest.(check bool) "join within horizon" true (s.join_at <= spec_exponential.horizon_ms);
      Alcotest.(check bool) "positive duration" true (Churn.session_duration s >= 0.0))
    sessions

let test_churn_arrival_rate () =
  let rng = Prelude.Prng.create 9 in
  let sessions = Churn.generate spec_exponential ~rng in
  (* Expected arrivals = rate * horizon = 5/s * 100 s = 500. *)
  let n = List.length sessions in
  Alcotest.(check bool) (Printf.sprintf "got %d arrivals, expected ~500" n) true (abs (n - 500) < 80)

let test_churn_departure_mix () =
  let rng = Prelude.Prng.create 10 in
  let sessions = Churn.generate { spec_exponential with horizon_ms = 1_000_000.0 } ~rng in
  let count p = List.length (List.filter p sessions) in
  let crashes = count (fun (s : Churn.session) -> s.departure = Churn.Crash) in
  let handovers = count (fun (s : Churn.session) -> s.departure = Churn.Handover) in
  let total = List.length sessions in
  let frac n = float_of_int n /. float_of_int total in
  Alcotest.(check bool) "crash fraction near 0.2" true (abs_float (frac crashes -. 0.2) < 0.04);
  Alcotest.(check bool) "handover fraction near 0.1" true (abs_float (frac handovers -. 0.1) < 0.04)

let test_churn_validation () =
  Alcotest.check_raises "bad fractions"
    (Invalid_argument "Churn: departure fractions must be non-negative and sum to at most 1")
    (fun () -> Churn.validate { spec_exponential with failure_fraction = 0.8; mobility_fraction = 0.5 });
  Alcotest.check_raises "bad rate" (Invalid_argument "Churn: arrival rate must be positive") (fun () ->
      Churn.validate { spec_exponential with arrival_rate_per_s = 0.0 })

let test_churn_population_estimate () =
  (* 5 arrivals/s x 30 s mean session = 150 expected live peers. *)
  Alcotest.(check (float 1e-6)) "little's law" 150.0 (Churn.expected_population spec_exponential);
  let pareto =
    { spec_exponential with session = Churn.Pareto { alpha = 2.0; min_ms = 10_000.0 } }
  in
  Alcotest.(check (float 1e-6)) "pareto mean" 100.0 (Churn.expected_population pareto);
  let heavy = { spec_exponential with session = Churn.Pareto { alpha = 0.9; min_ms = 1.0 } } in
  Alcotest.(check bool) "infinite mean" true (Churn.expected_population heavy = infinity)

let test_trace () =
  let t = Trace.create () in
  Alcotest.(check int) "zero default" 0 (Trace.counter t "x");
  Trace.incr t "x";
  Trace.incr t "x";
  Trace.add_count t "y" 5;
  Alcotest.(check int) "incr" 2 (Trace.counter t "x");
  Alcotest.(check (list (pair string int))) "sorted counters" [ ("x", 2); ("y", 5) ] (Trace.counters t);
  Trace.observe t "lat" 1.0;
  Trace.observe t "lat" 3.0;
  (match Trace.stat t "lat" with
  | Some s -> Alcotest.(check (float 1e-9)) "observed mean" 2.0 (Prelude.Stats.mean s)
  | None -> Alcotest.fail "missing stat");
  Alcotest.(check bool) "missing stat" true (Trace.stat t "nope" = None);
  Trace.reset t;
  Alcotest.(check int) "reset" 0 (Trace.counter t "x")

let qcheck_engine_total_order =
  QCheck.Test.make ~name:"engine executes every event exactly once in time order" ~count:100
    QCheck.(list (float_bound_inclusive 100.0))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter (fun d -> Engine.schedule e ~delay:d (fun () -> fired := Engine.now e :: !fired)) delays;
      Engine.run e;
      let times = List.rev !fired in
      List.length times = List.length delays && times = List.sort compare delays)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "simkit",
    [
      Alcotest.test_case "engine time order" `Quick test_engine_time_order;
      Alcotest.test_case "engine FIFO ties" `Quick test_engine_fifo_same_time;
      Alcotest.test_case "engine nested" `Quick test_engine_nested_scheduling;
      Alcotest.test_case "engine until" `Quick test_engine_until;
      Alcotest.test_case "engine step" `Quick test_engine_step;
      Alcotest.test_case "engine errors" `Quick test_engine_errors;
      Alcotest.test_case "node lifecycle" `Quick test_node_lifecycle;
      Alcotest.test_case "node fail" `Quick test_node_fail;
      Alcotest.test_case "transport delay" `Quick test_transport_delay;
      Alcotest.test_case "transport rpc" `Quick test_transport_rpc;
      Alcotest.test_case "transport drop" `Quick test_transport_drop_unreachable;
      Alcotest.test_case "transport loss injection" `Quick test_transport_loss_injection;
      Alcotest.test_case "transport drop buckets" `Quick test_transport_drop_buckets;
      Alcotest.test_case "transport set-loss needs rng" `Quick test_transport_set_loss_needs_rng;
      Alcotest.test_case "transport rpc loss per leg" `Quick
        test_transport_rpc_loss_independent_per_leg;
      Alcotest.test_case "churn generation" `Quick test_churn_generation;
      Alcotest.test_case "churn arrival rate" `Quick test_churn_arrival_rate;
      Alcotest.test_case "churn departure mix" `Slow test_churn_departure_mix;
      Alcotest.test_case "churn validation" `Quick test_churn_validation;
      Alcotest.test_case "churn population" `Quick test_churn_population_estimate;
      Alcotest.test_case "trace" `Quick test_trace;
      q qcheck_engine_total_order;
    ] )
