(* Streaming.Bulk: file-swarm distribution. *)

open Streaming

let fixture ~peers ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 400) ~seed in
  let rng = Prelude.Prng.create seed in
  let peer_routers =
    Array.map (fun i -> map.leaves.(i))
      (Prelude.Prng.sample_without_replacement rng ~k:peers ~n:(Array.length map.leaves))
  in
  (map, peer_routers, rng)

let short_params = { Bulk.default_params with chunks = 32; max_time_ms = 30_000.0 }

let random_mesh rng n k =
  Array.init n (fun i ->
      Array.map (fun j -> if j >= i then j + 1 else j)
        (Prelude.Prng.sample_without_replacement rng ~k ~n:(n - 1)))

let test_swarm_completes () =
  let map, peer_routers, rng = fixture ~peers:25 ~seed:1 in
  let n = Array.length peer_routers in
  let report =
    Bulk.run ~params:short_params ~graph:map.graph ~seed_router:map.core.(0) ~peer_routers
      ~neighbor_sets:(random_mesh rng n 4) ~seed:5 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "everyone finishes (%.2f)" report.completed_fraction)
    true
    (report.completed_fraction > 0.95);
  Alcotest.(check bool) "completion times ordered" true
    (report.mean_completion_ms <= report.p95_completion_ms);
  Alcotest.(check bool) "completion within horizon" true
    (report.p95_completion_ms <= short_params.max_time_ms);
  Alcotest.(check bool) "accounting" true
    (report.messages > 0 && report.link_bytes >= report.bytes)

let test_no_mesh_no_completion () =
  let map, peer_routers, _ = fixture ~peers:20 ~seed:2 in
  (* Only the seed fanout delivers pieces; with fanout 2 and no mesh, no
     peer can assemble all 32 pieces. *)
  let report =
    Bulk.run
      ~params:{ short_params with seed_fanout = 2 }
      ~graph:map.graph ~seed_router:map.core.(0) ~peer_routers
      ~neighbor_sets:(Array.make 20 [||]) ~seed:3 ()
  in
  Alcotest.(check (float 1e-9)) "nobody completes" 0.0 report.completed_fraction

let test_deterministic () =
  let map, peer_routers, rng = fixture ~peers:15 ~seed:4 in
  let mesh = random_mesh rng 15 3 in
  let run () =
    Bulk.run ~params:short_params ~graph:map.graph ~seed_router:map.core.(0) ~peer_routers
      ~neighbor_sets:mesh ~seed:9 ()
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical reports" true (a = b)

let test_validation () =
  let map, peer_routers, _ = fixture ~peers:5 ~seed:5 in
  Alcotest.check_raises "bad params" (Invalid_argument "Bulk.run: bad parameters") (fun () ->
      ignore
        (Bulk.run
           ~params:{ short_params with chunks = 0 }
           ~graph:map.graph ~seed_router:0 ~peer_routers ~neighbor_sets:(Array.make 5 [||])
           ~seed:1 ()));
  Alcotest.check_raises "mismatched sets" (Invalid_argument "Bulk.run: one neighbor set per peer")
    (fun () ->
      ignore
        (Bulk.run ~params:short_params ~graph:map.graph ~seed_router:0 ~peer_routers
           ~neighbor_sets:(Array.make 2 [||]) ~seed:1 ()))

let test_bulk_exp_smoke () =
  let rows =
    Eval.Bulk_exp.run
      {
        Eval.Bulk_exp.routers = 400;
        peers = 40;
        landmark_count = 4;
        k = 4;
        session = { Bulk.default_params with chunks = 24; max_time_ms = 30_000.0 };
        seed = 2;
      }
  in
  Alcotest.(check int) "three selectors" 3 (List.length rows);
  List.iter
    (fun (r : Eval.Bulk_exp.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s completes (%.2f)" r.selector r.completed_fraction)
        true
        (r.completed_fraction > 0.9);
      Alcotest.(check bool) "stress >= bytes" true (r.link_megabytes >= r.megabytes))
    rows

let suite =
  ( "bulk",
    [
      Alcotest.test_case "swarm completes" `Slow test_swarm_completes;
      Alcotest.test_case "mesh required" `Quick test_no_mesh_no_completion;
      Alcotest.test_case "deterministic" `Slow test_deterministic;
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "bulk experiment" `Slow test_bulk_exp_smoke;
    ] )
