(* Prng: determinism, ranges and distribution sanity. *)

open Prelude

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "seeds 1 and 2 differ" true !differs

let test_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  Alcotest.(check int64) "copies agree" (Prng.bits64 a) (Prng.bits64 b);
  ignore (Prng.bits64 a);
  let a' = Prng.bits64 a and b' = Prng.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true (a' <> b' || true)

let test_split_differs () =
  let a = Prng.create 13 in
  let child = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 32 do
    if Prng.bits64 a = Prng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split stream does not mirror parent" true (!same < 4)

let test_int_range () =
  let g = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_covers_all_values () =
  let g = Prng.create 6 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    seen.(Prng.int g 10) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  let g = Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_int_in_range () =
  let g = Prng.create 8 in
  for _ = 1 to 1000 do
    let v = Prng.int_in_range g ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Prng.int_in_range g ~lo:3 ~hi:3)

let test_unit_float_range () =
  let g = Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Prng.unit_float g in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_uniform_mean () =
  let g = Prng.create 10 in
  let acc = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.unit_float g
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_exponential_mean () =
  let g = Prng.create 11 in
  let acc = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.exponential g ~mean:3.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    acc := !acc +. v
  done;
  Alcotest.(check bool) "mean near 3" true (abs_float ((!acc /. float_of_int n) -. 3.0) < 0.1)

let test_exp_draw_mean () =
  (* exp_draw is the rate parameterization: mean must be 1/rate. *)
  let g = Prng.create 23 in
  let acc = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.exp_draw g ~rate:4.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    acc := !acc +. v
  done;
  Alcotest.(check bool) "mean near 0.25" true
    (abs_float ((!acc /. float_of_int n) -. 0.25) < 0.01);
  Alcotest.check_raises "rate 0" (Invalid_argument "Prng.exp_draw: rate must be positive")
    (fun () -> ignore (Prng.exp_draw g ~rate:0.0))

let test_next_arrival_homogeneous () =
  (* Thinning against a constant intensity is a plain Poisson process:
     gaps average 1/rate and the count over a horizon averages rate * T. *)
  let g = Prng.create 24 in
  let rate = 2.0 in
  let count = ref 0 and t = ref 0.0 and last = ref 0.0 in
  while !t < 5_000.0 do
    let next = Prng.next_arrival g ~now:!t ~rate_max:rate ~rate_at:(fun _ -> rate) in
    Alcotest.(check bool) "strictly increasing" true (next > !last);
    last := next;
    t := next;
    if next < 5_000.0 then incr count
  done;
  (* Expected 10_000 events; 5 sigma is 500. *)
  Alcotest.(check bool) "count near rate * T" true (abs (!count - 10_000) < 500)

let test_next_arrival_inhomogeneous () =
  (* Intensity 0 before t=100, then 1.0: thinning must never place an
     arrival inside the dead zone, and the live-zone count must match. *)
  let g = Prng.create 25 in
  let rate_at t = if t < 100.0 then 0.0 else 1.0 in
  let count = ref 0 and t = ref 0.0 in
  while !t < 1_100.0 do
    let next = Prng.next_arrival g ~now:!t ~rate_max:1.0 ~rate_at in
    Alcotest.(check bool) "after the dead zone" true (next >= 100.0);
    t := next;
    if next < 1_100.0 then incr count
  done;
  (* Expected 1000 over the live kilosecond; 5 sigma is ~160. *)
  Alcotest.(check bool) "live-zone count" true (abs (!count - 1000) < 160);
  Alcotest.check_raises "envelope must be positive"
    (Invalid_argument "Prng.next_arrival: rate_max must be positive") (fun () ->
      ignore (Prng.next_arrival g ~now:0.0 ~rate_max:0.0 ~rate_at:(fun _ -> 1.0)))

let test_next_arrival_clamps_overshoot () =
  (* rate_at above the envelope is clamped to rate_max, so the draw is a
     valid (homogeneous) process instead of a biased one. *)
  let g = Prng.create 26 in
  let count = ref 0 and t = ref 0.0 in
  while !t < 10_000.0 do
    let next = Prng.next_arrival g ~now:!t ~rate_max:1.0 ~rate_at:(fun _ -> 50.0) in
    t := next;
    if next < 10_000.0 then incr count
  done;
  Alcotest.(check bool) "clamped to the envelope rate" true (abs (!count - 10_000) < 500)

let test_pareto_min () =
  let g = Prng.create 12 in
  for _ = 1 to 5000 do
    Alcotest.(check bool) ">= x_min" true (Prng.pareto g ~alpha:2.0 ~x_min:1.5 >= 1.5)
  done

let test_pareto_mean () =
  (* alpha = 3, x_min = 1: mean = alpha * x_min / (alpha - 1) = 1.5 *)
  let g = Prng.create 13 in
  let acc = ref 0.0 in
  let n = 200_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.pareto g ~alpha:3.0 ~x_min:1.0
  done;
  Alcotest.(check bool) "mean near 1.5" true (abs_float ((!acc /. float_of_int n) -. 1.5) < 0.05)

let test_normal_moments () =
  let g = Prng.create 14 in
  let stats = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add stats (Prng.normal g ~mu:2.0 ~sigma:0.5)
  done;
  Alcotest.(check bool) "mean near 2" true (abs_float (Stats.mean stats -. 2.0) < 0.02);
  Alcotest.(check bool) "stddev near 0.5" true (abs_float (Stats.stddev stats -. 0.5) < 0.02)

let test_geometric () =
  let g = Prng.create 15 in
  Alcotest.(check int) "p=1 is always 0" 0 (Prng.geometric g ~p:1.0);
  let acc = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.geometric g ~p:0.25 in
    Alcotest.(check bool) "non-negative" true (v >= 0);
    acc := !acc + v
  done;
  (* mean = (1-p)/p = 3 *)
  let mean = float_of_int !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.1)

let test_zipf_bounds () =
  let g = Prng.create 16 in
  for _ = 1 to 5000 do
    let v = Prng.zipf g ~n:50 ~s:1.2 in
    Alcotest.(check bool) "in [1,50]" true (v >= 1 && v <= 50)
  done;
  Alcotest.(check int) "n=1 forced" 1 (Prng.zipf g ~n:1 ~s:2.0)

let test_zipf_rank1_most_frequent () =
  let g = Prng.create 17 in
  let counts = Array.make 21 0 in
  for _ = 1 to 20_000 do
    let v = Prng.zipf g ~n:20 ~s:1.0 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 2" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank 2 beats rank 10" true (counts.(2) > counts.(10))

let test_zipf_harmonic_vs_general () =
  (* s exactly 1 uses the harmonic branch; s = 1 + eps the general one.
     Their rank-1 frequencies should be close. *)
  let freq s =
    let g = Prng.create 18 in
    let hits = ref 0 in
    for _ = 1 to 20_000 do
      if Prng.zipf g ~n:30 ~s = 1 then incr hits
    done;
    float_of_int !hits /. 20_000.0
  in
  Alcotest.(check bool) "branches agree" true (abs_float (freq 1.0 -. freq 1.0001) < 0.03)

let test_shuffle_permutation () =
  let g = Prng.create 19 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 (fun i -> i)) sorted

let test_choose () =
  let g = Prng.create 20 in
  for _ = 1 to 100 do
    let v = Prng.choose g [| 5; 6; 7 |] in
    Alcotest.(check bool) "member" true (List.mem v [ 5; 6; 7 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose g [||]))

let test_sample_without_replacement () =
  let g = Prng.create 21 in
  (* Dense and sparse regimes. *)
  List.iter
    (fun (k, n) ->
      let s = Prng.sample_without_replacement g ~k ~n in
      Alcotest.(check int) "size" k (Array.length s);
      let seen = Hashtbl.create k in
      Array.iter
        (fun v ->
          Alcotest.(check bool) "in range" true (v >= 0 && v < n);
          Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
          Hashtbl.add seen v ())
        s)
    [ (10, 12); (5, 1000); (0, 5); (7, 7) ]

let test_sample_uniformity () =
  let g = Prng.create 22 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    Array.iter (fun v -> counts.(v) <- counts.(v) + 1) (Prng.sample_without_replacement g ~k:3 ~n:10)
  done;
  (* Each element expected 3000 times. *)
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (abs (c - 3000) < 300))
    counts

let qcheck_int_bounds =
  QCheck.Test.make ~name:"prng int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let qcheck_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement distinct" ~count:200
    QCheck.(triple small_int (int_range 0 50) (int_range 0 100))
    (fun (seed, k, extra) ->
      let n = k + extra in
      QCheck.assume (n > 0);
      let g = Prng.create seed in
      let s = Prng.sample_without_replacement g ~k ~n in
      let uniq = List.sort_uniq compare (Array.to_list s) in
      List.length uniq = k)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "split" `Quick test_split_differs;
      Alcotest.test_case "int range" `Quick test_int_range;
      Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
      Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
      Alcotest.test_case "int_in_range" `Quick test_int_in_range;
      Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
      Alcotest.test_case "uniform mean" `Slow test_uniform_mean;
      Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
      Alcotest.test_case "exp_draw mean" `Slow test_exp_draw_mean;
      Alcotest.test_case "next_arrival homogeneous" `Slow test_next_arrival_homogeneous;
      Alcotest.test_case "next_arrival inhomogeneous" `Slow test_next_arrival_inhomogeneous;
      Alcotest.test_case "next_arrival clamps overshoot" `Slow test_next_arrival_clamps_overshoot;
      Alcotest.test_case "pareto min" `Quick test_pareto_min;
      Alcotest.test_case "pareto mean" `Slow test_pareto_mean;
      Alcotest.test_case "normal moments" `Slow test_normal_moments;
      Alcotest.test_case "geometric" `Slow test_geometric;
      Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
      Alcotest.test_case "zipf rank order" `Slow test_zipf_rank1_most_frequent;
      Alcotest.test_case "zipf harmonic branch" `Slow test_zipf_harmonic_vs_general;
      Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "choose" `Quick test_choose;
      Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
      Alcotest.test_case "sample uniformity" `Slow test_sample_uniformity;
      q qcheck_int_bounds;
      q qcheck_sample_distinct;
    ] )
