(* Slo: declarative objectives, burn-rate evaluation over Timeseries
   windows, the --slo mini-language and the stateful breach monitor. *)

open Simkit

let check_parse input expected =
  match Slo.of_string input with
  | Error e -> Alcotest.fail (Printf.sprintf "%S failed to parse: %s" input e)
  | Ok s -> (
      Alcotest.(check string) (input ^ " keeps its spelling as name") input s.Slo.name;
      match (s.Slo.objective, expected) with
      | Slo.Quantile_max a, Slo.Quantile_max b ->
          Alcotest.(check string) "series" b.series a.series;
          Alcotest.(check (float 1e-9)) "q" b.q a.q;
          Alcotest.(check (float 1e-9)) "limit" b.limit a.limit
      | Slo.Mean_max a, Slo.Mean_max b ->
          Alcotest.(check string) "series" b.series a.series;
          Alcotest.(check (float 1e-9)) "limit" b.limit a.limit
      | Slo.Mean_min a, Slo.Mean_min b ->
          Alcotest.(check string) "series" b.series a.series;
          Alcotest.(check (float 1e-9)) "floor" b.floor a.floor
      | Slo.Ratio_min a, Slo.Ratio_min b ->
          Alcotest.(check string) "num" b.num a.num;
          Alcotest.(check string) "den" b.den a.den;
          Alcotest.(check (float 1e-9)) "floor" b.floor a.floor
      | got, want ->
          Alcotest.fail
            (Printf.sprintf "%S: parsed %s, wanted %s" input
               (Slo.describe_objective got) (Slo.describe_objective want)))

let test_parse_quantile_tag () =
  (* Regression: the _pNN splice once left the trailing digit in the series
     name ("join_p99_ms" -> "join9_ms"), silently matching no series. *)
  check_parse "join_p99_ms=500"
    (Slo.Quantile_max { series = "join_ms"; q = 0.99; limit = 500.0 });
  check_parse "rpc_latency_p90_ms=40"
    (Slo.Quantile_max { series = "rpc_latency_ms"; q = 0.9; limit = 40.0 });
  check_parse "setup_p50=3"
    (Slo.Quantile_max { series = "setup"; q = 0.5; limit = 3.0 })

let test_parse_bounds_and_ratio () =
  check_parse "audit_recall_at_k>=0.9"
    (Slo.Mean_min { series = "audit_recall_at_k"; floor = 0.9 });
  check_parse "rpc_latency_ms<=40" (Slo.Mean_max { series = "rpc_latency_ms"; limit = 40.0 });
  check_parse "join_completed/join_started>=0.99"
    (Slo.Ratio_min { num = "join_completed"; den = "join_started"; floor = 0.99 })

let test_parse_errors () =
  let rejects input =
    match Slo.of_string input with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" input)
  in
  rejects "";
  rejects "just_a_name";
  rejects "join_ms=500" (* "=" without a quantile tag *);
  rejects "x>=" (* missing number *);
  rejects "/den>=0.5" (* empty numerator *);
  rejects "x<=abc"

let test_spec_validation () =
  (match Slo.spec ~burn_threshold:0.0 (Slo.Mean_max { series = "x"; limit = 1.0 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero burn_threshold accepted");
  match Slo.spec ~lookback:(-1) (Slo.Mean_max { series = "x"; limit = 1.0 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative lookback accepted"

(* Three windows of "lat": means 10, 100, 100. *)
let three_window_ts () =
  let ts = Timeseries.create ~window_ms:100.0 () in
  Timeseries.observe ts "lat" ~now:10.0 10.0;
  Timeseries.observe ts "lat" ~now:110.0 100.0;
  Timeseries.observe ts "lat" ~now:210.0 100.0;
  ts

let test_evaluate_mean_burn_rate () =
  let ts = three_window_ts () in
  let st = Slo.evaluate ts (Slo.spec (Slo.Mean_max { series = "lat"; limit = 50.0 })) in
  Alcotest.(check int) "evaluated" 3 st.Slo.evaluated;
  Alcotest.(check int) "violating" 2 st.Slo.violating;
  Alcotest.(check (float 1e-9)) "burn rate" (2.0 /. 3.0) st.Slo.burn_rate;
  Alcotest.(check (float 1e-9)) "worst" 100.0 st.Slo.worst;
  Alcotest.(check bool) "breached at default threshold 0.5" true st.Slo.breached;
  let lax =
    Slo.evaluate ts
      (Slo.spec ~burn_threshold:0.7 (Slo.Mean_max { series = "lat"; limit = 50.0 }))
  in
  Alcotest.(check bool) "2/3 under threshold 0.7" false lax.Slo.breached

let test_evaluate_lookback () =
  let ts = three_window_ts () in
  (* Looking only at the oldest-excluded tail: both recent windows violate. *)
  let st =
    Slo.evaluate ts (Slo.spec ~lookback:2 (Slo.Mean_max { series = "lat"; limit = 50.0 }))
  in
  Alcotest.(check int) "only recent windows evaluated" 2 st.Slo.evaluated;
  Alcotest.(check (float 1e-9)) "full burn" 1.0 st.Slo.burn_rate;
  (* A floor objective over the same data: the good window is old. *)
  let floor_st =
    Slo.evaluate ts (Slo.spec ~lookback:1 (Slo.Mean_min { series = "lat"; floor = 50.0 }))
  in
  Alcotest.(check bool) "newest window satisfies the floor" false floor_st.Slo.breached

let test_evaluate_empty_series () =
  let ts = Timeseries.create ~window_ms:100.0 () in
  let st = Slo.evaluate ts (Slo.spec (Slo.Mean_max { series = "ghost"; limit = 1.0 })) in
  Alcotest.(check int) "nothing evaluated" 0 st.Slo.evaluated;
  Alcotest.(check bool) "no data, no breach" false st.Slo.breached;
  Alcotest.(check bool) "worst is nan" true (Float.is_nan st.Slo.worst)

let test_evaluate_quantile () =
  let ts = Timeseries.create ~window_ms:100.0 () in
  (* One window: 90 fast samples and a 10% tail at 1000; the p99 sees the
     tail, the median does not.  (A P2 sketch needs a few tail samples to
     move, hence 10 rather than a single outlier.) *)
  for i = 0 to 99 do
    Timeseries.observe ts "lat" ~now:(float_of_int i)
      (if i mod 10 = 9 then 1000.0 else 1.0)
  done;
  let p99 =
    Slo.evaluate ts (Slo.spec (Slo.Quantile_max { series = "lat"; q = 0.99; limit = 10.0 }))
  in
  Alcotest.(check bool) "tail breaches p99 cap" true p99.Slo.breached;
  let p50 =
    Slo.evaluate ts (Slo.spec (Slo.Quantile_max { series = "lat"; q = 0.5; limit = 10.0 }))
  in
  Alcotest.(check bool) "median unaffected" false p50.Slo.breached

let test_evaluate_ratio_aggregates_across_windows () =
  let ts = Timeseries.create ~window_ms:100.0 () in
  (* 4 starts in window 0, completions landing in later windows — a
     per-window ratio would be nonsense (0/4 then 3/0). *)
  for _ = 1 to 4 do
    Timeseries.observe ts "join_started" ~now:10.0 1.0
  done;
  Timeseries.observe ts "join_completed" ~now:150.0 1.0;
  Timeseries.observe ts "join_completed" ~now:250.0 1.0;
  Timeseries.observe ts "join_completed" ~now:260.0 1.0;
  let spec =
    Slo.spec (Slo.Ratio_min { num = "join_completed"; den = "join_started"; floor = 0.9 })
  in
  let st = Slo.evaluate ts spec in
  Alcotest.(check (float 1e-9)) "aggregate ratio 3/4" 0.75 st.Slo.worst;
  Alcotest.(check bool) "under the floor" true st.Slo.breached;
  let ok =
    Slo.evaluate ts
      (Slo.spec (Slo.Ratio_min { num = "join_completed"; den = "join_started"; floor = 0.7 }))
  in
  Alcotest.(check bool) "laxer floor holds" false ok.Slo.breached

let test_monitor_edges () =
  let ts = Timeseries.create ~window_ms:100.0 () in
  let spec =
    Slo.spec ~lookback:1 ~burn_threshold:1.0 (Slo.Mean_max { series = "lat"; limit = 50.0 })
  in
  let m = Slo.monitor [ spec ] in
  let breaches = ref 0 and clears = ref 0 in
  let poll () =
    ignore
      (Slo.poll
         ~on_breach:(fun _ -> incr breaches)
         ~on_clear:(fun _ -> incr clears)
         m ts)
  in
  poll ();
  Alcotest.(check int) "no data, no edge" 0 !breaches;
  Timeseries.observe ts "lat" ~now:10.0 100.0;
  poll ();
  poll ();
  Alcotest.(check int) "breach fires once on the transition" 1 !breaches;
  Alcotest.(check (list string)) "listed while in breach" [ spec.Slo.name ]
    (Slo.breached_names m);
  Timeseries.observe ts "lat" ~now:150.0 1.0;
  poll ();
  poll ();
  Alcotest.(check int) "clear fires once" 1 !clears;
  Alcotest.(check (list string)) "no longer listed" [] (Slo.breached_names m);
  Timeseries.observe ts "lat" ~now:250.0 99.0;
  poll ();
  Alcotest.(check int) "re-breach is a fresh edge" 2 !breaches

let test_monitor_window_boundary_flap () =
  (* An admission queue that empties exactly at a window boundary: the
     good sample lands at t = k * window_ms, which belongs to the NEW
     window (half-open intervals), so a lookback-1 monitor must clear on
     that very poll — and a fresh violation one boundary later must be a
     new breach edge, not a suppressed duplicate.  Counts both edges of
     the breach -> clear -> breach flap. *)
  let ts = Timeseries.create ~window_ms:100.0 () in
  let spec =
    Slo.spec ~lookback:1 ~burn_threshold:1.0 (Slo.Mean_max { series = "wait"; limit = 50.0 })
  in
  let m = Slo.monitor [ spec ] in
  let breaches = ref 0 and clears = ref 0 in
  let poll () =
    ignore
      (Slo.poll
         ~on_breach:(fun _ -> incr breaches)
         ~on_clear:(fun _ -> incr clears)
         m ts)
  in
  (* Window 0: the queue is backed up. *)
  Timeseries.observe ts "wait" ~now:40.0 400.0;
  poll ();
  Alcotest.(check int) "backlog breaches" 1 !breaches;
  (* The queue drains; the idle head-age sample lands exactly on the
     boundary, opening window 1. *)
  Timeseries.observe ts "wait" ~now:100.0 0.0;
  poll ();
  Alcotest.(check int) "boundary sample clears" 1 !clears;
  Alcotest.(check int) "no extra breach" 1 !breaches;
  (* Polling again at the same state is edge-free. *)
  poll ();
  Alcotest.(check int) "steady clear is silent" 1 !clears;
  (* A second wave backs the queue up again exactly on the next boundary. *)
  Timeseries.observe ts "wait" ~now:200.0 400.0;
  poll ();
  Alcotest.(check int) "flap re-breaches" 2 !breaches;
  Alcotest.(check int) "still one clear" 1 !clears;
  (* And drains again on the boundary after that. *)
  Timeseries.observe ts "wait" ~now:300.0 0.0;
  poll ();
  Alcotest.(check int) "flap re-clears" 2 !clears;
  Alcotest.(check (list string)) "nothing left breached" [] (Slo.breached_names m)

let test_renderings () =
  let ts = three_window_ts () in
  let st = Slo.evaluate ts (Slo.of_string_exn "lat<=50") in
  let line = Slo.status_line st in
  let has needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "line names the spec" true (has "lat<=50" line);
  Alcotest.(check bool) "line flags the breach" true (has "BREACHED" line);
  let json = Slo.status_json st in
  Alcotest.(check bool) "json breached flag" true (has "\"breached\": true" json);
  Alcotest.(check bool) "json burn rate" true (has "\"burn_rate\"" json)

let suite =
  ( "slo",
    [
      Alcotest.test_case "parse quantile tags" `Quick test_parse_quantile_tag;
      Alcotest.test_case "parse bounds and ratios" `Quick test_parse_bounds_and_ratio;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
      Alcotest.test_case "mean burn rate" `Quick test_evaluate_mean_burn_rate;
      Alcotest.test_case "lookback" `Quick test_evaluate_lookback;
      Alcotest.test_case "empty series" `Quick test_evaluate_empty_series;
      Alcotest.test_case "quantile objective" `Quick test_evaluate_quantile;
      Alcotest.test_case "ratio aggregates across windows" `Quick
        test_evaluate_ratio_aggregates_across_windows;
      Alcotest.test_case "monitor edge events" `Quick test_monitor_edges;
      Alcotest.test_case "window-boundary flap" `Quick test_monitor_window_boundary_flap;
      Alcotest.test_case "renderings" `Quick test_renderings;
    ] )
