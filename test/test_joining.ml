(* Joining experiment: open sessions + timed discovery. *)

let tiny_config =
  {
    Eval.Joining_exp.quick_config with
    routers = 400;
    initial_peers = 40;
    newcomers = 10;
    session = { Streaming.Session.default_params with duration_ms = 30_000.0 };
    seed = 3;
  }

let test_open_session_add_peer () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 300) ~seed:2 in
  let session =
    Streaming.Session.create ~graph:map.graph ~source_router:map.core.(0) ~seed:5 ()
  in
  Alcotest.(check int) "empty" 0 (Streaming.Session.peer_count session);
  let a = Streaming.Session.add_peer session ~router:map.leaves.(0) ~neighbors:[] in
  let b = Streaming.Session.add_peer session ~router:map.leaves.(1) ~neighbors:[ a ] in
  Alcotest.(check int) "sequential ids" 1 b;
  Streaming.Session.link session a b;
  Streaming.Session.link session a a;
  Streaming.Session.link session a 999;
  Alcotest.(check int) "two peers" 2 (Streaming.Session.peer_count session);
  (* Advance past several chunks: both peers should receive and start. *)
  Streaming.Session.advance session ~until:15_000.0;
  let report = Streaming.Session.report session in
  Alcotest.(check bool) "someone started" true (report.started_fraction > 0.0);
  Alcotest.(check bool) "messages flowed" true (report.messages > 0)

let test_late_joiner_starts () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 300) ~seed:3 in
  let session =
    Streaming.Session.create ~graph:map.graph ~source_router:map.core.(0) ~seed:6 ()
  in
  (* Established pair streaming for 20 s, then a latecomer attaches. *)
  let a = Streaming.Session.add_peer session ~router:map.leaves.(0) ~neighbors:[] in
  let b = Streaming.Session.add_peer session ~router:map.leaves.(1) ~neighbors:[ a ] in
  ignore b;
  Streaming.Session.advance session ~until:20_000.0;
  let late = Streaming.Session.add_peer session ~router:map.leaves.(2) ~neighbors:[ a; b ] in
  Streaming.Session.advance session ~until:40_000.0;
  let report = Streaming.Session.report session in
  let lr = report.peers.(late) in
  Alcotest.(check bool) "latecomer started" true (not (Float.is_nan lr.startup_delay_ms));
  Alcotest.(check bool)
    (Printf.sprintf "reasonable startup (%.0f ms)" lr.startup_delay_ms)
    true
    (lr.startup_delay_ms > 0.0 && lr.startup_delay_ms < 15_000.0);
  Alcotest.(check bool) "latecomer plays" true (lr.chunks_played > 0)

let test_joining_experiment_smoke () =
  let rows = Eval.Joining_exp.run tiny_config in
  Alcotest.(check int) "four methods" 4 (List.length rows);
  let find name = List.find (fun (r : Eval.Joining_exp.row) -> r.method_name = name) rows in
  let proposed = find "proposed" in
  let random = find "random (instant)" in
  let coords = find "ideal-coords (delayed)" in
  Alcotest.(check (float 1e-9)) "random discovery is instant" 0.0 random.mean_discovery_ms;
  Alcotest.(check bool) "proposed discovery costs time" true (proposed.mean_discovery_ms > 0.0);
  Alcotest.(check bool) "coords pay convergence" true
    (coords.mean_discovery_ms > proposed.mean_discovery_ms);
  Alcotest.(check bool)
    (Printf.sprintf "proposed beats coords to playback (%.0f vs %.0f)"
       proposed.mean_time_to_play_ms coords.mean_time_to_play_ms)
    true
    (proposed.mean_time_to_play_ms < coords.mean_time_to_play_ms);
  Alcotest.(check bool)
    (Printf.sprintf "proximity bought closer neighbors (%.2f vs %.2f hops)"
       proposed.mean_neighbor_hops random.mean_neighbor_hops)
    true
    (proposed.mean_neighbor_hops < random.mean_neighbor_hops);
  List.iter
    (fun (r : Eval.Joining_exp.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s newcomers mostly start (%.2f)" r.method_name r.started_fraction)
        true
        (r.started_fraction > 0.7))
    rows

let suite =
  ( "joining",
    [
      Alcotest.test_case "open session add_peer" `Quick test_open_session_add_peer;
      Alcotest.test_case "late joiner starts" `Quick test_late_joiner_starts;
      Alcotest.test_case "joining experiment" `Slow test_joining_experiment_smoke;
    ] )
