(* Bfs, Dijkstra, Centrality, Degree, Latency. *)

open Topology

(* 0-1-2-3 path plus pendant 4 off node 1, and an isolated pair 5-6. *)
let forest () =
  Graph.of_edges ~node_count:7 [ (0, 1); (1, 2); (2, 3); (1, 4); (5, 6) ]

let path5 () = Graph.of_edges ~node_count:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]

(* Star with center 0 and leaves 1..4. *)
let star () = Graph.of_edges ~node_count:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ]

let test_bfs_distances () =
  let d = Bfs.distances (forest ()) 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 2; max_int; max_int |] d

let test_bfs_distance_pair () =
  let g = forest () in
  Alcotest.(check int) "same node" 0 (Bfs.distance g 3 3);
  Alcotest.(check int) "pair" 3 (Bfs.distance g 0 3);
  Alcotest.(check int) "unreachable" max_int (Bfs.distance g 0 5)

let test_bfs_within () =
  let g = forest () in
  let within = Bfs.distances_within g 1 1 in
  Alcotest.(check (list (pair int int))) "radius 1" [ (1, 0); (0, 1); (2, 1); (4, 1) ] within

let test_bfs_parents_path () =
  let g = forest () in
  let parents = Bfs.parents g 0 in
  Alcotest.(check (list int)) "path to 3" [ 0; 1; 2; 3 ] (Bfs.path_to ~parents ~src:0 3);
  Alcotest.(check (list int)) "path to source" [ 0 ] (Bfs.path_to ~parents ~src:0 0);
  Alcotest.(check (list int)) "unreachable" [] (Bfs.path_to ~parents ~src:0 6)

let test_bfs_parents_deterministic () =
  (* A 4-cycle: two shortest paths from 0 to 2; the lowest-id parent (1) must
     win over 3. *)
  let g = Graph.of_edges ~node_count:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let parents = Bfs.parents g 0 in
  Alcotest.(check int) "parent of 2 is 1" 1 parents.(2)

let test_eccentricity () =
  Alcotest.(check int) "path end" 4 (Bfs.eccentricity (path5 ()) 0);
  Alcotest.(check int) "path middle" 2 (Bfs.eccentricity (path5 ()) 2);
  Alcotest.(check int) "forest ignores unreachable" 3 (Bfs.eccentricity (forest ()) 0)

let test_mean_pairwise () =
  let g = path5 () in
  let rng = Prelude.Prng.create 1 in
  let mean = Bfs.mean_pairwise_distance g ~samples:5000 ~rng in
  (* Exact mean over distinct ordered pairs of the 5-path is 2.0. *)
  Alcotest.(check bool) "near 2.0" true (abs_float (mean -. 2.0) < 0.15)

let test_dijkstra_unit_weights_match_bfs () =
  let g = forest () in
  let d = Dijkstra.distances g ~weight:(fun _ _ -> 1.0) 0 in
  let b = Bfs.distances g 0 in
  Array.iteri
    (fun v dv ->
      let expected = if b.(v) = max_int then infinity else float_of_int b.(v) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" v) expected dv)
    d

let test_dijkstra_weighted_detour () =
  (* Triangle where the direct edge is expensive: 0-2 costs 10, 0-1-2 costs 3. *)
  let g = Graph.of_edges ~node_count:3 [ (0, 1); (1, 2); (0, 2) ] in
  let weight u v = match (min u v, max u v) with 0, 2 -> 10.0 | _ -> 1.5 in
  Alcotest.(check (float 1e-9)) "takes the detour" 3.0 (Dijkstra.distance g ~weight 0 2);
  let parents = Dijkstra.parents g ~weight 0 in
  Alcotest.(check int) "parent of 2 is 1" 1 parents.(2)

let test_dijkstra_negative_weight () =
  let g = Graph.of_edges ~node_count:2 [ (0, 1) ] in
  Alcotest.check_raises "negative" (Invalid_argument "Dijkstra: negative edge weight") (fun () ->
      ignore (Dijkstra.distances g ~weight:(fun _ _ -> -1.0) 0))

let test_betweenness_path () =
  (* On a 5-path, exact betweenness is [0; 3; 4; 3; 0]. *)
  let b = Centrality.betweenness (path5 ()) in
  Alcotest.(check (array (float 1e-9))) "path betweenness" [| 0.0; 3.0; 4.0; 3.0; 0.0 |] b

let test_betweenness_star () =
  (* Star center lies on all C(4,2) = 6 leaf pairs. *)
  let b = Centrality.betweenness (star ()) in
  Alcotest.(check (float 1e-9)) "center" 6.0 b.(0);
  for v = 1 to 4 do
    Alcotest.(check (float 1e-9)) "leaf" 0.0 b.(v)
  done

let test_betweenness_sampled_unbiased () =
  let g = path5 () in
  let rng = Prelude.Prng.create 2 in
  (* Sampling all n sources must equal the exact algorithm. *)
  let sampled = Centrality.betweenness_sampled g ~sources:5 ~rng in
  let exact = Centrality.betweenness g in
  Array.iteri (fun v s -> Alcotest.(check (float 1e-6)) (string_of_int v) exact.(v) s) sampled

let test_closeness () =
  let g = star () in
  (* Center: mean distance 1 -> closeness 1. Leaf: distances 1,2,2,2 -> 4/7. *)
  Alcotest.(check (float 1e-9)) "center" 1.0 (Centrality.closeness g 0);
  Alcotest.(check (float 1e-9)) "leaf" (4.0 /. 7.0) (Centrality.closeness g 1)

let test_k_core () =
  (* A 4-clique with a pendant chain: clique nodes have core 3, chain 1. *)
  let g =
    Graph.of_edges ~node_count:6
      [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (3, 4); (4, 5) ]
  in
  let core = Centrality.k_core_numbers g in
  Alcotest.(check (array int)) "core numbers" [| 3; 3; 3; 3; 1; 1 |] core;
  Alcotest.(check (list int)) "3-core members" [ 0; 1; 2; 3 ] (Centrality.k_core_members g 3);
  Alcotest.(check (list int)) "4-core empty" [] (Centrality.k_core_members g 4)

let test_top_by () =
  let scores = [| 1.0; 5.0; 3.0; 5.0 |] in
  Alcotest.(check (list int)) "top 3, ties to lower id" [ 1; 3; 2 ] (Centrality.top_by scores 3);
  Alcotest.(check (list int)) "k > n" [ 1; 3; 2; 0 ] (Centrality.top_by scores 10)

let test_degree_histogram () =
  let h = Degree.histogram (star ()) in
  Alcotest.(check int) "one center" 1 (Prelude.Histogram.count h 4);
  Alcotest.(check int) "four leaves" 4 (Prelude.Histogram.count h 1)

let test_degree_fraction_gini () =
  let g = star () in
  Alcotest.(check (float 1e-9)) "fraction degree 1" 0.8 (Degree.fraction_with_degree g 1);
  (* A cycle is perfectly homogeneous: gini 0. *)
  let cycle = Graph.of_edges ~node_count:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check (float 1e-9)) "cycle gini" 0.0 (Degree.gini cycle);
  Alcotest.(check bool) "star gini positive" true (Degree.gini g > 0.2)

let test_power_law_alpha () =
  let g = Gen_ba.generate ~nodes:3000 ~edges_per_node:2 ~seed:5 in
  let alpha = Degree.power_law_alpha g ~x_min:3 in
  (* BA's theoretical exponent is 3; the MLE on a finite graph lands nearby. *)
  Alcotest.(check bool) (Printf.sprintf "alpha = %.2f in [2, 4.5]" alpha) true
    (alpha > 2.0 && alpha < 4.5);
  Alcotest.check_raises "x_min too high"
    (Invalid_argument "Degree.power_law_alpha: no node reaches x_min") (fun () ->
      ignore (Degree.power_law_alpha (star ()) ~x_min:50))

let test_median_percentile_degree () =
  let g = star () in
  Alcotest.(check int) "median" 1 (Degree.median_degree g);
  Alcotest.(check int) "p100" 4 (Degree.percentile_degree g 100.0)

let test_latency_models () =
  let g = path5 () in
  let hop = Latency.assign g Latency.Hop_count ~seed:1 in
  Alcotest.(check (float 1e-9)) "hop model" 1.0 (Latency.get hop 0 1);
  Alcotest.(check (float 1e-9)) "path latency" 4.0 (Latency.path_latency hop [ 0; 1; 2; 3; 4 ]);
  let uni = Latency.assign g (Latency.Uniform { lo = 2.0; hi = 5.0 }) ~seed:2 in
  List.iter
    (fun (u, v) ->
      let l = Latency.get uni u v in
      Alcotest.(check bool) "uniform in range" true (l >= 2.0 && l < 5.0);
      Alcotest.(check (float 1e-9)) "symmetric" l (Latency.get uni v u))
    (Graph.edges g);
  Alcotest.check_raises "missing edge" Not_found (fun () -> ignore (Latency.get hop 0 4))

let test_latency_core_weighted () =
  (* Star: center degree 4, leaves 1; with threshold 2 every link touches a
     leaf, so all links draw from the edge (slow) distribution mean. *)
  let g = star () in
  let t = Latency.assign g (Latency.Core_weighted { core_ms = 1.0; edge_ms = 50.0; threshold = 2 }) ~seed:3 in
  List.iter
    (fun (u, v) -> Alcotest.(check bool) "positive" true (Latency.get t u v > 0.0))
    (Graph.edges g)

let test_latency_deterministic () =
  let g = path5 () in
  let a = Latency.assign g (Latency.Uniform { lo = 1.0; hi = 2.0 }) ~seed:9 in
  let b = Latency.assign g (Latency.Uniform { lo = 1.0; hi = 2.0 }) ~seed:9 in
  List.iter
    (fun (u, v) -> Alcotest.(check (float 0.0)) "same seed same latency" (Latency.get a u v) (Latency.get b u v))
    (Graph.edges g)

let qcheck_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs satisfies triangle inequality on random graphs" ~count:50
    QCheck.(pair small_int (list (pair (int_range 0 11) (int_range 0 11))))
    (fun (seed, extra) ->
      let b = Builder.create 12 in
      (* Connect a ring to keep everything reachable, then add noise edges. *)
      for i = 0 to 11 do
        ignore (Builder.add_edge b i ((i + 1) mod 12))
      done;
      List.iter (fun (u, v) -> ignore (Builder.add_edge b u v)) extra;
      let g = Builder.to_graph b in
      let rng = Prelude.Prng.create seed in
      let x = Prelude.Prng.int rng 12 and y = Prelude.Prng.int rng 12 and z = Prelude.Prng.int rng 12 in
      Bfs.distance g x z <= Bfs.distance g x y + Bfs.distance g y z)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "paths",
    [
      Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
      Alcotest.test_case "bfs pair" `Quick test_bfs_distance_pair;
      Alcotest.test_case "bfs within" `Quick test_bfs_within;
      Alcotest.test_case "bfs parents path" `Quick test_bfs_parents_path;
      Alcotest.test_case "bfs deterministic tie-break" `Quick test_bfs_parents_deterministic;
      Alcotest.test_case "eccentricity" `Quick test_eccentricity;
      Alcotest.test_case "mean pairwise" `Slow test_mean_pairwise;
      Alcotest.test_case "dijkstra = bfs on unit weights" `Quick test_dijkstra_unit_weights_match_bfs;
      Alcotest.test_case "dijkstra detour" `Quick test_dijkstra_weighted_detour;
      Alcotest.test_case "dijkstra negative weight" `Quick test_dijkstra_negative_weight;
      Alcotest.test_case "betweenness path" `Quick test_betweenness_path;
      Alcotest.test_case "betweenness star" `Quick test_betweenness_star;
      Alcotest.test_case "betweenness sampled" `Quick test_betweenness_sampled_unbiased;
      Alcotest.test_case "closeness" `Quick test_closeness;
      Alcotest.test_case "k-core" `Quick test_k_core;
      Alcotest.test_case "top_by" `Quick test_top_by;
      Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
      Alcotest.test_case "degree fraction/gini" `Quick test_degree_fraction_gini;
      Alcotest.test_case "power-law alpha" `Slow test_power_law_alpha;
      Alcotest.test_case "median/percentile degree" `Quick test_median_percentile_degree;
      Alcotest.test_case "latency models" `Quick test_latency_models;
      Alcotest.test_case "latency core-weighted" `Quick test_latency_core_weighted;
      Alcotest.test_case "latency deterministic" `Quick test_latency_deterministic;
      q qcheck_bfs_triangle_inequality;
    ] )
