(* Audit: online sampled ground-truth checks of the query path.  The load-
   bearing property is equivalence with the offline evaluator — at rate 1.0
   the auditor must agree with Eval.Measure on the same workload. *)

open Nearby

let make_workload ?(routers = 300) ?(peers = 40) ~seed () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params routers) ~seed in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let rng = Prelude.Prng.create seed in
  let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:4 ~rng in
  let server = Server.create oracle ~landmarks in
  let peer_routers =
    Array.init peers (fun peer -> map.leaves.(peer mod Array.length map.leaves))
  in
  Array.iteri
    (fun peer attach_router -> ignore (Server.join server ~peer ~attach_router))
    peer_routers;
  (map, server, peer_routers)

let test_rate_validation () =
  let _, server, _ = make_workload ~seed:1 () in
  match Audit.create ~rate:1.5 server with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rate above 1 accepted"

let test_rate_zero_never_samples () =
  let _, server, _ = make_workload ~seed:2 () in
  let a = Audit.create ~rate:0.0 server in
  for peer = 0 to 19 do
    Audit.sample_reply a ~peer ~reply:(Server.neighbors server ~peer ~k:3)
  done;
  Alcotest.(check int) "no audits" 0 (Simkit.Trace.counter (Audit.trace a) "audit_samples");
  Alcotest.(check int) "all skipped" 20
    (Simkit.Trace.counter (Audit.trace a) "audit_not_sampled")

let test_sampled_rate_roughly_holds () =
  let _, server, _ = make_workload ~peers:40 ~seed:3 () in
  let a = Audit.create ~rate:0.3 server in
  let replies = 400 in
  for i = 0 to replies - 1 do
    let peer = i mod 40 in
    Audit.sample_reply a ~peer ~reply:(Server.neighbors server ~peer ~k:3)
  done;
  let sampled = Simkit.Trace.counter (Audit.trace a) "audit_samples" in
  Alcotest.(check int) "sampled + skipped = replies" replies
    (sampled + Simkit.Trace.counter (Audit.trace a) "audit_not_sampled");
  (* 400 Bernoulli(0.3) trials: anything outside [80, 160] means the
     sampler is broken, not unlucky. *)
  Alcotest.(check bool)
    (Printf.sprintf "sampled count %d near 120" sampled)
    true
    (sampled >= 80 && sampled <= 160)

let test_unknown_peer_counted () =
  let _, server, _ = make_workload ~seed:4 () in
  let a = Audit.create ~rate:1.0 server in
  Audit.audit_reply a ~peer:9999 ~reply:[ (0, 1) ];
  Alcotest.(check int) "no_info counter" 1 (Simkit.Trace.counter (Audit.trace a) "audit_no_info");
  Alcotest.(check int) "not scored" 0 (Simkit.Trace.counter (Audit.trace a) "audit_samples")

(* Full-rate audit against the offline evaluator on the same replies: the
   acceptance criterion is agreement within 5%. *)
let test_full_rate_matches_offline_measure () =
  let k = 4 in
  let map, server, peer_routers = make_workload ~peers:40 ~seed:5 () in
  let a = Audit.create ~rate:1.0 server in
  let n = Array.length peer_routers in
  let answers = Array.init n (fun peer -> Audit.neighbors a ~peer ~k) in
  let trace = Audit.trace a in
  Alcotest.(check int) "every reply audited" n (Simkit.Trace.counter trace "audit_samples");
  let ctx = Selector.make_context map.graph ~peer_routers in
  let sets = Array.map (fun reply -> Array.of_list (List.map fst reply)) answers in
  let outcome = Eval.Measure.score ctx ~k ~named_sets:[ ("server", sets) ] in
  let scored = List.hd outcome.Eval.Measure.scored in
  let online_stretch =
    (Option.get (Simkit.Trace.summary trace "audit_stretch")).Simkit.Trace.mean
  in
  let online_recall =
    (Option.get (Simkit.Trace.summary trace "audit_recall_at_k")).Simkit.Trace.mean
  in
  Alcotest.(check bool) "stretch is a ratio >= 1" true (online_stretch >= 1.0);
  (* Mean of per-peer ratios vs ratio of sums: same signal, same data, so
     they must sit within the ±5% band the acceptance criterion names. *)
  let rel_diff = Float.abs (online_stretch -. scored.Eval.Measure.ratio) /. scored.Eval.Measure.ratio in
  Alcotest.(check bool)
    (Printf.sprintf "stretch %.4f vs offline ratio %.4f within 5%%" online_stretch
       scored.Eval.Measure.ratio)
    true (rel_diff <= 0.05);
  let recall_diff = Float.abs (online_recall -. scored.Eval.Measure.hit_ratio) in
  Alcotest.(check bool)
    (Printf.sprintf "recall %.4f vs offline hit ratio %.4f within 0.05" online_recall
       scored.Eval.Measure.hit_ratio)
    true (recall_diff <= 0.05)

let test_optimal_reply_scores_perfectly () =
  (* Feed the auditor the ground-truth sets themselves: recall 1.0,
     stretch 1.0, zero displacement, every sample exact. *)
  let k = 3 in
  let map, server, peer_routers = make_workload ~peers:30 ~seed:6 () in
  let ctx = Selector.make_context map.graph ~peer_routers in
  let n = Array.length peer_routers in
  let dummy = Array.make n [||] in
  let outcome = Eval.Measure.score ctx ~k ~named_sets:[ ("dummy", dummy) ] in
  let a = Audit.create ~rate:1.0 server in
  Array.iteri
    (fun peer opt ->
      Audit.audit_reply a ~peer ~reply:(Array.to_list (Array.map (fun id -> (id, 0)) opt)))
    outcome.Eval.Measure.optimal_sets;
  let trace = Audit.trace a in
  let mean name = (Option.get (Simkit.Trace.summary trace name)).Simkit.Trace.mean in
  Alcotest.(check (float 1e-9)) "recall 1.0" 1.0 (mean "audit_recall_at_k");
  Alcotest.(check (float 1e-9)) "stretch 1.0" 1.0 (mean "audit_stretch");
  Alcotest.(check int) "all exact" n (Simkit.Trace.counter trace "audit_exact")

let test_timeseries_feed () =
  let _, server, _ = make_workload ~seed:7 () in
  let ts = Simkit.Timeseries.create ~window_ms:10.0 () in
  let now = ref 0.0 in
  let a = Audit.create ~rate:1.0 ~timeseries:ts ~clock:(fun () -> !now) server in
  now := 5.0;
  ignore (Audit.neighbors a ~peer:0 ~k:3);
  now := 25.0;
  ignore (Audit.neighbors a ~peer:1 ~k:3);
  match Simkit.Timeseries.windows ts "audit_recall_at_k" with
  | [ Some w0; None; Some w2 ] ->
      Alcotest.(check int) "first sample in window 0" 0 w0.Simkit.Timeseries.index;
      Alcotest.(check int) "second sample in window 2" 2 w2.Simkit.Timeseries.index
  | ws ->
      Alcotest.fail
        (Printf.sprintf "expected windows [0; gap; 2], got %d entries" (List.length ws))

let suite =
  ( "audit",
    [
      Alcotest.test_case "rate validation" `Quick test_rate_validation;
      Alcotest.test_case "rate 0 never samples" `Quick test_rate_zero_never_samples;
      Alcotest.test_case "sampled rate roughly holds" `Quick test_sampled_rate_roughly_holds;
      Alcotest.test_case "unknown peer counted" `Quick test_unknown_peer_counted;
      Alcotest.test_case "rate 1.0 = offline evaluator" `Quick
        test_full_rate_matches_offline_measure;
      Alcotest.test_case "optimal reply scores perfectly" `Quick
        test_optimal_reply_scores_perfectly;
      Alcotest.test_case "timeseries feed" `Quick test_timeseries_feed;
    ] )
