(* Server: the management server and the two-round protocol. *)

open Nearby

let make_workload ?(routers = 400) ?(landmarks = 4) ~seed () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params routers) ~seed in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let rng = Prelude.Prng.create seed in
  let lmks = Landmark.place map.graph Landmark.Medium_degree ~count:landmarks ~rng in
  (map, oracle, lmks, rng)

let test_create_validation () =
  let map, oracle, _, _ = make_workload ~seed:1 () in
  ignore map;
  Alcotest.check_raises "no landmarks" (Invalid_argument "Server.create: no landmarks") (fun () ->
      ignore (Server.create oracle ~landmarks:[||]));
  Alcotest.check_raises "duplicates" (Invalid_argument "Server.create: duplicate landmark") (fun () ->
      ignore (Server.create oracle ~landmarks:[| 3; 3 |]))

let test_join_registers () =
  let map, oracle, lmks, _ = make_workload ~seed:2 () in
  let server = Server.create oracle ~landmarks:lmks in
  let info = Server.join server ~peer:0 ~attach_router:map.leaves.(0) in
  Alcotest.(check int) "peer count" 1 (Server.peer_count server);
  Alcotest.(check bool) "mem" true (Server.mem server 0);
  Alcotest.(check bool) "landmark is one of ours" true (Array.mem info.landmark lmks);
  Alcotest.(check int) "attach router" map.leaves.(0) info.attach_router;
  Alcotest.(check bool) "path complete" true (Traceroute.Path.is_complete info.recorded_path);
  (* Round 1 costs one ping per landmark + the traceroute packets. *)
  Alcotest.(check bool) "probe cost counted" true
    (info.probes_spent >= Array.length lmks + Traceroute.Path.hop_count info.recorded_path);
  Server.check_invariants server

let test_join_picks_closest_landmark () =
  let map, oracle, lmks, _ = make_workload ~seed:3 () in
  let server = Server.create oracle ~landmarks:lmks in
  let attach = map.leaves.(1) in
  let info = Server.join server ~peer:0 ~attach_router:attach in
  let my_hops = Traceroute.Route_oracle.route_length oracle ~src:attach ~dst:info.landmark in
  Array.iter
    (fun lmk ->
      Alcotest.(check bool) "no landmark is strictly closer" true
        (Traceroute.Route_oracle.route_length oracle ~src:attach ~dst:lmk >= my_hops))
    lmks

let test_join_duplicate () =
  let map, oracle, lmks, _ = make_workload ~seed:4 () in
  let server = Server.create oracle ~landmarks:lmks in
  ignore (Server.join server ~peer:0 ~attach_router:map.leaves.(0));
  Alcotest.check_raises "duplicate" (Invalid_argument "Server.join: peer already registered")
    (fun () -> ignore (Server.join server ~peer:0 ~attach_router:map.leaves.(1)))

let test_neighbors_sane () =
  let map, oracle, lmks, _ = make_workload ~seed:5 () in
  let server = Server.create oracle ~landmarks:lmks in
  for peer = 0 to 49 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer mod Array.length map.leaves))
  done;
  for peer = 0 to 49 do
    let reply = Server.neighbors server ~peer ~k:5 in
    Alcotest.(check bool) "at most k" true (List.length reply <= 5);
    Alcotest.(check bool) "never self" true (List.for_all (fun (p, _) -> p <> peer) reply);
    let ids = List.map fst reply in
    Alcotest.(check int) "distinct" (List.length ids) (List.length (List.sort_uniq compare ids));
    (* Ascending inferred distance among same-tree entries. *)
    let rec ascending = function
      | (_, a) :: ((_, b) :: _ as rest) -> a <= b && ascending rest
      | _ -> true
    in
    Alcotest.(check bool) "sorted" true (ascending reply)
  done;
  Server.check_invariants server

let test_neighbors_unknown_peer () =
  let _, oracle, lmks, _ = make_workload ~seed:6 () in
  let server = Server.create oracle ~landmarks:lmks in
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Server.neighbors server ~peer:3 ~k:2))

let test_cross_tree_topup () =
  let map, oracle, lmks, _ = make_workload ~seed:7 () in
  let server = Server.create oracle ~landmarks:lmks in
  (* Two peers: they may land in different landmark trees, yet each must be
     offered the other via top-up. *)
  ignore (Server.join server ~peer:0 ~attach_router:map.leaves.(0));
  ignore (Server.join server ~peer:1 ~attach_router:map.leaves.(Array.length map.leaves - 1));
  let reply = Server.neighbors server ~peer:0 ~k:3 in
  Alcotest.(check int) "the one other peer is returned" 1 (List.length reply);
  Alcotest.(check int) "it is peer 1" 1 (fst (List.hd reply))

let test_leave () =
  let map, oracle, lmks, _ = make_workload ~seed:8 () in
  let server = Server.create oracle ~landmarks:lmks in
  for peer = 0 to 9 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  Server.leave server ~peer:3;
  Alcotest.(check int) "peer count" 9 (Server.peer_count server);
  Alcotest.(check bool) "gone" false (Server.mem server 3);
  List.iter
    (fun (p, _) -> Alcotest.(check bool) "departed peer not returned" true (p <> 3))
    (Server.neighbors server ~peer:0 ~k:9);
  Server.check_invariants server;
  Alcotest.check_raises "double leave" Not_found (fun () -> Server.leave server ~peer:3)

let test_handover () =
  let map, oracle, lmks, _ = make_workload ~seed:9 () in
  let server = Server.create oracle ~landmarks:lmks in
  ignore (Server.join server ~peer:0 ~attach_router:map.leaves.(0));
  let info = Server.handover server ~peer:0 ~attach_router:map.leaves.(5) in
  Alcotest.(check int) "new attachment" map.leaves.(5) info.attach_router;
  Alcotest.(check int) "still one peer" 1 (Server.peer_count server);
  Server.check_invariants server;
  let trace = Server.trace server in
  Alcotest.(check int) "handover counted" 1 (Simkit.Trace.counter trace "handover");
  (* A handover re-runs the join round, so two joins are recorded. *)
  Alcotest.(check int) "joins counted" 2 (Simkit.Trace.counter trace "join");
  Alcotest.check_raises "handover unknown peer" Not_found (fun () ->
      ignore (Server.handover server ~peer:42 ~attach_router:map.leaves.(0)))

let test_uniform_choice () =
  let map, oracle, lmks, _ = make_workload ~seed:10 () in
  let server = Server.create ~choice:Server.Uniform oracle ~landmarks:lmks in
  (* With uniform choice and many joins, more than one landmark gets used. *)
  let used = Hashtbl.create 4 in
  for peer = 0 to 39 do
    let info = Server.join server ~peer ~attach_router:map.leaves.(peer) in
    Hashtbl.replace used info.landmark ()
  done;
  Alcotest.(check bool) "several landmarks used" true (Hashtbl.length used > 1);
  (* Uniform choice skips the ping round: probe cost excludes landmark count. *)
  Server.check_invariants server

let test_truncated_server () =
  let map, oracle, lmks, _ = make_workload ~seed:11 () in
  let server = Server.create ~truncate:(Traceroute.Truncate.Last_k 3) oracle ~landmarks:lmks in
  for peer = 0 to 19 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  Server.check_invariants server;
  let reply = Server.neighbors server ~peer:0 ~k:5 in
  Alcotest.(check bool) "still answers" true (List.length reply > 0)

let test_probe_noise_does_not_break_registration () =
  let map, oracle, lmks, _ = make_workload ~seed:12 () in
  let server =
    Server.create
      ~probe_config:{ Traceroute.Probe.default_config with drop_prob = 0.5 }
      oracle ~landmarks:lmks
  in
  let rng = Prelude.Prng.create 99 in
  for peer = 0 to 19 do
    ignore (Server.join ~rng server ~peer ~attach_router:map.leaves.(peer))
  done;
  Server.check_invariants server;
  Alcotest.(check int) "all registered" 20 (Server.peer_count server)

let test_trace_counters () =
  let map, oracle, lmks, _ = make_workload ~seed:13 () in
  let server = Server.create oracle ~landmarks:lmks in
  for peer = 0 to 4 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  ignore (Server.neighbors server ~peer:0 ~k:2);
  Server.leave server ~peer:4;
  let trace = Server.trace server in
  Alcotest.(check int) "joins" 5 (Simkit.Trace.counter trace "join");
  Alcotest.(check int) "queries" 1 (Simkit.Trace.counter trace "query");
  Alcotest.(check int) "leaves" 1 (Simkit.Trace.counter trace "leave");
  Alcotest.(check bool) "probe packets recorded" true (Simkit.Trace.counter trace "probe_packets" > 0);
  (* Wire accounting: 5 path reports + 1 request/reply exchange, each a
     handful of bytes. *)
  let wire = Simkit.Trace.counter trace "wire_bytes" in
  Alcotest.(check bool) (Printf.sprintf "wire bytes sane (%d)" wire) true (wire > 30 && wire < 2000);
  match Simkit.Trace.stat trace "path_hops" with
  | Some s -> Alcotest.(check int) "one hop sample per join" 5 (Prelude.Stats.count s)
  | None -> Alcotest.fail "missing path_hops stat"

let test_matches_naive_reference () =
  (* Integration property: for peers sharing a landmark, the server's reply
     must equal an exhaustive-scan reference over the same recorded paths. *)
  let map, oracle, lmks, _ = make_workload ~seed:20 () in
  let server = Server.create oracle ~landmarks:lmks in
  let naive_by_landmark = Hashtbl.create 8 in
  Array.iter
    (fun lmk -> Hashtbl.add naive_by_landmark lmk (Naive_registry.create ~landmark:lmk))
    lmks;
  let n = 60 in
  for peer = 0 to n - 1 do
    let info = Server.join server ~peer ~attach_router:map.leaves.(peer) in
    let routers = Traceroute.Path.known_routers info.recorded_path in
    Naive_registry.insert (Hashtbl.find naive_by_landmark info.landmark) ~peer ~routers
  done;
  for peer = 0 to n - 1 do
    let info = Option.get (Server.info server peer) in
    let naive = Hashtbl.find naive_by_landmark info.landmark in
    let expected = Naive_registry.query_member naive ~peer ~k:4 in
    let got =
      Server.neighbors server ~peer ~k:4 |> List.filter (fun (_, d) -> d <> max_int)
    in
    (* The server may append cross-tree top-ups (distance max_int, filtered
       above); the same-tree prefix must match the reference exactly. *)
    let rec prefix a b =
      match (a, b) with
      | [], _ -> true
      | x :: xs, y :: ys -> x = y && prefix xs ys
      | _ :: _, [] -> false
    in
    Alcotest.(check bool)
      (Printf.sprintf "peer %d reply matches reference" peer)
      true
      (prefix got expected)
  done

let test_reverse_introductions () =
  let map, oracle, lmks, _ = make_workload ~seed:21 () in
  let server = Server.create oracle ~landmarks:lmks in
  let n = 50 in
  for peer = 0 to n - 1 do
    ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
  done;
  for peer = 0 to n - 1 do
    let intros = Server.reverse_introductions server ~peer ~k:4 in
    Alcotest.(check bool) "bounded" true (List.length intros <= 4);
    List.iter
      (fun (candidate, d) ->
        Alcotest.(check bool) "not self" true (candidate <> peer);
        Alcotest.(check bool) "distance sane" true (d >= 0);
        (* Definition: the newcomer is in the candidate's own k-NN. *)
        let candidate_knn = Server.neighbors server ~peer:candidate ~k:4 |> List.map fst in
        Alcotest.(check bool)
          (Printf.sprintf "peer %d really in %d's k-NN" peer candidate)
          true
          (List.mem peer candidate_knn))
      intros
  done;
  Alcotest.check_raises "unregistered" Not_found (fun () ->
      ignore (Server.reverse_introductions server ~peer:999 ~k:3))

let test_deterministic_without_rng () =
  let run () =
    let map, oracle, lmks, _ = make_workload ~seed:14 () in
    let server = Server.create oracle ~landmarks:lmks in
    for peer = 0 to 29 do
      ignore (Server.join server ~peer ~attach_router:map.leaves.(peer))
    done;
    List.init 30 (fun peer -> Server.neighbors server ~peer ~k:4)
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

(* Model-based random-operation test: the server against a trivial
   reference model (set of registered peers), with structural invariants
   checked after every step. *)
let qcheck_server_model =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun p -> `Join (p mod 30)) small_nat);
          (2, map (fun p -> `Leave (p mod 30)) small_nat);
          (1, map (fun p -> `Handover (p mod 30)) small_nat);
          (2, map2 (fun p k -> `Query (p mod 30, 1 + (k mod 5))) small_nat small_nat);
        ])
  in
  QCheck.Test.make ~name:"server behaves like a registration-set model" ~count:60
    QCheck.(make Gen.(pair small_nat (list_size (int_range 1 40) op_gen)))
    (fun (seed, ops) ->
      let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 200) ~seed:3 in
      let oracle = Traceroute.Route_oracle.create map.graph in
      let rng = Prelude.Prng.create seed in
      let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:3 ~rng in
      let server = Server.create oracle ~landmarks in
      let model = Hashtbl.create 32 in
      let router_of p = map.leaves.(p mod Array.length map.leaves) in
      List.for_all
        (fun op ->
          let step_ok =
            match op with
            | `Join p ->
                if Hashtbl.mem model p then (
                  match Server.join server ~peer:p ~attach_router:(router_of p) with
                  | exception Invalid_argument _ -> true
                  | _ -> false)
                else begin
                  ignore (Server.join server ~peer:p ~attach_router:(router_of p));
                  Hashtbl.replace model p ();
                  true
                end
            | `Leave p ->
                if Hashtbl.mem model p then begin
                  Server.leave server ~peer:p;
                  Hashtbl.remove model p;
                  true
                end
                else ( match Server.leave server ~peer:p with
                  | exception Not_found -> true
                  | () -> false)
            | `Handover p ->
                if Hashtbl.mem model p then begin
                  ignore (Server.handover server ~peer:p ~attach_router:(router_of (p + 7)));
                  true
                end
                else ( match Server.handover server ~peer:p ~attach_router:(router_of p) with
                  | exception Not_found -> true
                  | _ -> false)
            | `Query (p, k) ->
                if Hashtbl.mem model p then begin
                  let reply = Server.neighbors server ~peer:p ~k in
                  List.length reply <= k
                  && List.for_all (fun (q, _) -> q <> p && Hashtbl.mem model q) reply
                end
                else ( match Server.neighbors server ~peer:p ~k with
                  | exception Not_found -> true
                  | _ -> false)
          in
          Server.check_invariants server;
          step_ok && Server.peer_count server = Hashtbl.length model)
        ops)

(* --- Batch registration ------------------------------------------------ *)

let test_register_measured_batch_matches_singletons () =
  let map, oracle, lmks, _ = make_workload ~seed:8 () in
  let batch_server = Server.create oracle ~landmarks:lmks in
  let loop_server = Server.create oracle ~landmarks:lmks in
  let n = 40 in
  (* Deterministic measurement (no rng), so one measurement serves both
     servers. *)
  let entries =
    Array.init n (fun peer ->
        let attach = map.leaves.(peer mod Array.length map.leaves) in
        (peer, attach, Server.measure batch_server ~attach_router:attach))
  in
  let infos = Server.register_measured_batch batch_server entries in
  Array.iter
    (fun (peer, attach_router, m) ->
      ignore (Server.register_measured loop_server ~peer ~attach_router m))
    entries;
  Server.check_invariants batch_server;
  Alcotest.(check int) "peer count" n (Server.peer_count batch_server);
  Array.iteri
    (fun i (peer, _, _) ->
      match Server.info batch_server peer with
      | None -> Alcotest.fail (Printf.sprintf "peer %d missing" peer)
      | Some info -> Alcotest.(check bool) "info in entry order" true (info = infos.(i)))
    entries;
  (* Per-peer counters must match n singleton registrations exactly; the
     wire accounting must NOT — one packed batch report costs less than n
     separate ones.  Checked before any [neighbors] call touches the
     query/wire counters. *)
  let c name s = Simkit.Trace.counter (Server.trace s) name in
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " counter") (c name loop_server) (c name batch_server))
    [ "join"; "probe_packets" ];
  Alcotest.(check bool) "batched wire bytes cheaper" true
    (c "wire_bytes" batch_server < c "wire_bytes" loop_server);
  for peer = 0 to n - 1 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "neighbors %d identical" peer)
      (Server.neighbors loop_server ~peer ~k:4)
      (Server.neighbors batch_server ~peer ~k:4)
  done;
  (* A batch containing any registered peer is rejected before anything is
     applied. *)
  let fresh_attach = map.leaves.(0) in
  let bad =
    [|
      (n + 1, fresh_attach, Server.measure batch_server ~attach_router:fresh_attach);
      (0, fresh_attach, Server.measure batch_server ~attach_router:fresh_attach);
    |]
  in
  (match Server.register_measured_batch batch_server bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate batch accepted");
  Alcotest.(check int) "nothing applied" n (Server.peer_count batch_server)

let test_register_replica_batch_idempotent () =
  let map, oracle, lmks, _ = make_workload ~seed:9 () in
  let primary = Server.create oracle ~landmarks:lmks in
  let replica = Server.create oracle ~landmarks:lmks in
  let n = 25 in
  for peer = 0 to n - 1 do
    ignore (Server.join primary ~peer ~attach_router:map.leaves.(peer mod Array.length map.leaves))
  done;
  let entries =
    Array.init n (fun peer ->
        let info = Option.get (Server.info primary peer) in
        (peer, info.Server.attach_router, info.landmark, info.recorded_path, info.probes_spent))
  in
  Alcotest.(check int) "all applied" n (Server.register_replica_batch replica entries);
  Server.check_invariants replica;
  Alcotest.(check int) "replica population" n (Server.peer_count replica);
  Alcotest.(check int) "replica counter" n
    (Simkit.Trace.counter (Server.trace replica) "replica_register");
  for peer = 0 to n - 1 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "replica answers like primary for %d" peer)
      (Server.neighbors primary ~peer ~k:3)
      (Server.neighbors replica ~peer ~k:3)
  done;
  (* Replay: every entry already present is skipped, not an error. *)
  Alcotest.(check int) "replay applies nothing" 0 (Server.register_replica_batch replica entries);
  Alcotest.(check int) "population unchanged" n (Server.peer_count replica);
  (* A fresh entry naming an unknown landmark still fails loudly. *)
  let peer, attach, _, path, probes = entries.(0) in
  ignore peer;
  match
    Server.register_replica_batch replica [| (n + 50, attach, -1, path, probes) |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown landmark accepted"

let suite =
  ( "server",
    [
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "join registers" `Quick test_join_registers;
      Alcotest.test_case "batch registration = singletons" `Quick
        test_register_measured_batch_matches_singletons;
      Alcotest.test_case "replica batch idempotent" `Quick test_register_replica_batch_idempotent;
      Alcotest.test_case "join picks closest landmark" `Quick test_join_picks_closest_landmark;
      Alcotest.test_case "join duplicate" `Quick test_join_duplicate;
      Alcotest.test_case "neighbors sane" `Quick test_neighbors_sane;
      Alcotest.test_case "neighbors unknown" `Quick test_neighbors_unknown_peer;
      Alcotest.test_case "cross-tree top-up" `Quick test_cross_tree_topup;
      Alcotest.test_case "leave" `Quick test_leave;
      Alcotest.test_case "handover" `Quick test_handover;
      Alcotest.test_case "uniform landmark choice" `Quick test_uniform_choice;
      Alcotest.test_case "truncated tool" `Quick test_truncated_server;
      Alcotest.test_case "probe noise" `Quick test_probe_noise_does_not_break_registration;
      Alcotest.test_case "trace counters" `Quick test_trace_counters;
      Alcotest.test_case "matches naive reference" `Quick test_matches_naive_reference;
      Alcotest.test_case "reverse introductions" `Quick test_reverse_introductions;
      Alcotest.test_case "deterministic" `Quick test_deterministic_without_rng;
      QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) qcheck_server_model;
    ] )
