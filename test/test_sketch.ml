(* DDSketch-style mergeable quantile sketch, and the trace-level merge
   built on it. *)

open Prelude

let alpha = Sketch.default_alpha

(* The sketch answers rank [int (q * (n - 1))]; compare against the same
   order statistic, not an interpolated percentile, so the relative-error
   bound is the one the data structure actually promises. *)
let exact_rank samples q =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  sorted.(int_of_float (q *. float_of_int (Array.length sorted - 1)))

let within_bound ~est ~exact = Float.abs (est -. exact) <= (alpha *. Float.abs exact) +. 1e-9

let test_validation () =
  Alcotest.check_raises "alpha = 0" (Invalid_argument "Sketch.create: alpha outside (0, 1)")
    (fun () -> ignore (Sketch.create ~alpha:0.0 ()));
  Alcotest.check_raises "alpha = 1" (Invalid_argument "Sketch.create: alpha outside (0, 1)")
    (fun () -> ignore (Sketch.create ~alpha:1.0 ()));
  let t = Sketch.create () in
  Sketch.add t 1.0;
  Alcotest.check_raises "q out of range" (Invalid_argument "Sketch.quantile: q outside [0, 1]")
    (fun () -> ignore (Sketch.quantile t 1.5))

let test_empty () =
  let t = Sketch.create () in
  Alcotest.(check bool) "empty" true (Sketch.is_empty t);
  Alcotest.(check int) "count" 0 (Sketch.count t);
  Alcotest.(check bool) "nan quantile" true (Float.is_nan (Sketch.quantile t 0.5))

let test_single_value () =
  let t = Sketch.create () in
  Sketch.add t 42.0;
  List.iter
    (fun q ->
      let est = Sketch.quantile t q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f: %.3f vs 42" q est)
        true
        (within_bound ~est ~exact:42.0))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_zero_and_negative () =
  let t = Sketch.create () in
  List.iter (Sketch.add t) [ 0.0; -5.0; nan; 1e-12 ];
  Sketch.add t 100.0;
  Alcotest.(check int) "all retained" 5 (Sketch.count t);
  Alcotest.(check (float 1e-9)) "low quantile collapses to zero" 0.0 (Sketch.quantile t 0.2);
  Alcotest.(check bool) "top is the real sample" true
    (within_bound ~est:(Sketch.quantile t 1.0) ~exact:100.0)

let test_relative_error_heavy_tail () =
  let rng = Prng.create 11 in
  let samples =
    Array.init 50_000 (fun _ ->
        let u = Prng.unit_float rng in
        0.1 +. (10_000.0 *. u *. u *. u *. u))
  in
  let t = Sketch.create () in
  Array.iter (Sketch.add t) samples;
  List.iter
    (fun q ->
      let exact = exact_rank samples q in
      let est = Sketch.quantile t q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.3f: %.3f vs exact %.3f" q est exact)
        true (within_bound ~est ~exact))
    [ 0.01; 0.25; 0.5; 0.9; 0.99; 0.999 ]

let test_merge_alpha_mismatch () =
  let a = Sketch.create ~alpha:0.01 () and b = Sketch.create ~alpha:0.02 () in
  Alcotest.check_raises "mismatched alpha"
    (Invalid_argument "Sketch.merge_into: relative-error bounds differ") (fun () ->
      Sketch.merge_into ~into:a b)

let test_clear () =
  let t = Sketch.create () in
  List.iter (Sketch.add t) [ 1.0; 10.0; 100.0 ];
  Sketch.clear t;
  Alcotest.(check bool) "empty after clear" true (Sketch.is_empty t);
  Alcotest.(check int) "no buckets" 0 (Sketch.buckets_used t)

(* Positive-ish sample lists for the properties: heavy spread, including
   the sub-trackable region routed to the zero bucket. *)
let samples_gen =
  QCheck.(list_of_size Gen.(int_range 1 400) (float_bound_inclusive 50_000.0))

let qcheck_split_merge_matches_pooled =
  QCheck.Test.make ~name:"merge of split sketches = pooled sketch" ~count:200
    QCheck.(pair samples_gen (int_range 1 5))
    (fun (samples, pieces) ->
      QCheck.assume (samples <> []);
      let pooled = Sketch.create () in
      List.iter (Sketch.add pooled) samples;
      let parts = Array.init pieces (fun _ -> Sketch.create ()) in
      List.iteri (fun i v -> Sketch.add parts.(i mod pieces) v) samples;
      let merged = Sketch.create () in
      Array.iter (fun p -> Sketch.merge_into ~into:merged p) parts;
      Sketch.count merged = Sketch.count pooled
      && List.for_all
           (fun q ->
             let a = Sketch.quantile merged q and b = Sketch.quantile pooled q in
             a = b || Float.abs (a -. b) <= 1e-9 *. Float.abs b)
           [ 0.0; 0.1; 0.5; 0.9; 0.99; 1.0 ])

let qcheck_merged_within_bound_of_exact =
  QCheck.Test.make ~name:"merged sketch stays within the error bound" ~count:200
    samples_gen
    (fun samples ->
      QCheck.assume (samples <> []);
      let arr = Array.of_list samples in
      let a = Sketch.create () and b = Sketch.create () in
      Array.iteri (fun i v -> Sketch.add (if i mod 2 = 0 then a else b) v) arr;
      Sketch.merge_into ~into:a b;
      List.for_all
        (fun q -> within_bound ~est:(Sketch.quantile a q) ~exact:(exact_rank arr q))
        [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

(* --- Trace.merge_into: counters and stats exact, quantiles sketch-backed --- *)

let trace_of counts samples =
  let t = Simkit.Trace.create () in
  List.iter (fun (name, n) -> Simkit.Trace.add_count t name n) counts;
  List.iter (fun v -> Simkit.Trace.observe t "lat_ms" v) samples;
  t

let qcheck_trace_merge_matches_concat =
  QCheck.Test.make ~name:"Trace.merge_into agrees with concatenated samples" ~count:150
    QCheck.(pair samples_gen samples_gen)
    (fun (s1, s2) ->
      QCheck.assume (s1 <> [] && s2 <> []);
      let t1 = trace_of [ ("ops", 3) ] s1 and t2 = trace_of [ ("ops", 4) ] s2 in
      let into = Simkit.Trace.create () in
      Simkit.Trace.merge_into ~into t1;
      Simkit.Trace.merge_into ~into t2;
      let pooled = trace_of [ ("ops", 7) ] (s1 @ s2) in
      let merged_summary =
        match Simkit.Trace.summary into "lat_ms" with Some s -> s | None -> assert false
      in
      let pooled_summary =
        match Simkit.Trace.summary pooled "lat_ms" with Some s -> s | None -> assert false
      in
      let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b) in
      (* Counters add exactly; Welford count/mean pool exactly. *)
      Simkit.Trace.counter into "ops" = 7
      && merged_summary.count = pooled_summary.count
      && close merged_summary.mean pooled_summary.mean
      (* Quantile reads flip to the sketch on the merged stream and match
         the pooled sketch bit-for-bit (same buckets, same counts). *)
      && Simkit.Trace.is_merged into "lat_ms"
      && List.for_all
           (fun q ->
             match
               ( Simkit.Trace.sketch_quantile into "lat_ms" q,
                 Simkit.Trace.sketch_quantile pooled "lat_ms" q )
             with
             | Some a, Some b -> a = b
             | _ -> false)
           [ 0.5; 0.9; 0.99 ])

let test_trace_merge_quantile_read () =
  (* The public quantile accessor on a merged stream must answer from the
     sketch (any q), not the unmergeable P2 cells. *)
  let t1 = trace_of [] [ 10.0; 20.0 ] and t2 = trace_of [] [ 30.0; 40.0 ] in
  let into = Simkit.Trace.create () in
  Simkit.Trace.merge_into ~into t1;
  Simkit.Trace.merge_into ~into t2;
  match Simkit.Trace.quantile into "lat_ms" 0.75 with
  | None -> Alcotest.fail "no quantile on merged stream"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "p75 %.2f within bound of 30" v)
        true
        (within_bound ~est:v ~exact:30.0)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "sketch",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "single value" `Quick test_single_value;
      Alcotest.test_case "zero and negative" `Quick test_zero_and_negative;
      Alcotest.test_case "relative error, heavy tail" `Quick test_relative_error_heavy_tail;
      Alcotest.test_case "merge alpha mismatch" `Quick test_merge_alpha_mismatch;
      Alcotest.test_case "clear" `Quick test_clear;
      q qcheck_split_merge_matches_pooled;
      q qcheck_merged_within_bound_of_exact;
      q qcheck_trace_merge_matches_concat;
      Alcotest.test_case "merged trace quantile read" `Quick test_trace_merge_quantile_read;
    ] )
