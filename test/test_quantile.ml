(* P2 streaming quantile estimator. *)

open Prelude

let test_validation () =
  Alcotest.check_raises "q = 0" (Invalid_argument "Quantile.create: q must be in (0, 1)") (fun () ->
      ignore (Quantile.create ~q:0.0));
  Alcotest.check_raises "q = 1" (Invalid_argument "Quantile.create: q must be in (0, 1)") (fun () ->
      ignore (Quantile.create ~q:1.0))

let test_empty_and_exact_warmup () =
  let t = Quantile.create ~q:0.5 in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Quantile.estimate t));
  Quantile.add t 10.0;
  Alcotest.(check (float 1e-9)) "single sample" 10.0 (Quantile.estimate t);
  Quantile.add t 20.0;
  Alcotest.(check (float 1e-9)) "two samples, median" 15.0 (Quantile.estimate t);
  List.iter (Quantile.add t) [ 30.0; 40.0; 50.0 ];
  Alcotest.(check (float 1e-9)) "five samples, exact median" 30.0 (Quantile.estimate t);
  Alcotest.(check int) "count" 5 (Quantile.count t);
  Alcotest.(check (float 1e-9)) "q accessor" 0.5 (Quantile.q t)

let uniform_stream seed n =
  let rng = Prng.create seed in
  Array.init n (fun _ -> Prng.float rng 100.0)

let batch_quantile q samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  Stats.percentile sorted (q *. 100.0)

let check_close ~q ~seed ~n ~tolerance =
  let samples = uniform_stream seed n in
  let t = Quantile.create ~q in
  Array.iter (Quantile.add t) samples;
  let exact = batch_quantile q samples in
  let estimated = Quantile.estimate t in
  Alcotest.(check bool)
    (Printf.sprintf "q=%.2f n=%d: estimate %.2f vs exact %.2f" q n estimated exact)
    true
    (abs_float (estimated -. exact) < tolerance)

let test_median_uniform () = check_close ~q:0.5 ~seed:1 ~n:20_000 ~tolerance:1.5
let test_p95_uniform () = check_close ~q:0.95 ~seed:2 ~n:20_000 ~tolerance:1.5
let test_p99_uniform () = check_close ~q:0.99 ~seed:3 ~n:50_000 ~tolerance:1.0

let test_exponential_tail () =
  (* Skewed distribution: p95 of Exp(mean 10) is -10 ln 0.05 = 29.96. *)
  let rng = Prng.create 4 in
  let t = Quantile.create ~q:0.95 in
  for _ = 1 to 50_000 do
    Quantile.add t (Prng.exponential rng ~mean:10.0)
  done;
  let est = Quantile.estimate t in
  Alcotest.(check bool) (Printf.sprintf "p95 of exp: %.2f vs 29.96" est) true
    (abs_float (est -. 29.957) < 1.5)

let test_monotone_stream () =
  (* Sorted input is adversarial for naive estimators; P2 still lands near
     the true quantile. *)
  let t = Quantile.create ~q:0.5 in
  for i = 1 to 9999 do
    Quantile.add t (float_of_int i)
  done;
  let est = Quantile.estimate t in
  Alcotest.(check bool) (Printf.sprintf "median of 1..9999: %.0f" est) true
    (abs_float (est -. 5000.0) < 500.0)

let qcheck_between_extremes =
  QCheck.Test.make ~name:"p2 estimate stays within observed range" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(int_range 6 60) (float_bound_inclusive 1000.0)))
    (fun (_, samples) ->
      match samples with
      | [] -> true
      | _ ->
          let t = Quantile.create ~q:0.9 in
          List.iter (Quantile.add t) samples;
          let est = Quantile.estimate t in
          let lo = List.fold_left min infinity samples in
          let hi = List.fold_left max neg_infinity samples in
          est >= lo -. 1e-9 && est <= hi +. 1e-9)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "quantile",
    [
      Alcotest.test_case "validation" `Quick test_validation;
      Alcotest.test_case "warmup exactness" `Quick test_empty_and_exact_warmup;
      Alcotest.test_case "median uniform" `Slow test_median_uniform;
      Alcotest.test_case "p95 uniform" `Slow test_p95_uniform;
      Alcotest.test_case "p99 uniform" `Slow test_p99_uniform;
      Alcotest.test_case "exponential tail" `Slow test_exponential_tail;
      Alcotest.test_case "monotone stream" `Quick test_monotone_stream;
      q qcheck_between_extremes;
    ] )
