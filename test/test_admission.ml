(* Admission: bounded queue semantics, queueing-delay accounting on the
   engine clock, the three shedding policies, and the emitted metrics. *)

let mk ?metrics ?timeseries ?recorder ?on_drain ~capacity ~rate ~batch policy =
  let engine = Simkit.Engine.create () in
  let t =
    Nearby.Admission.create ~engine ?metrics ?timeseries ?recorder ?on_drain
      {
        Nearby.Admission.capacity;
        service_rate_per_s = rate;
        batch;
        policy;
      }
  in
  (engine, t)

type outcome = Served of float | Shed of string

let submit_tracked t log id =
  Nearby.Admission.submit t
    ~serve:(fun ~queued_ms -> log := (id, Served queued_ms) :: !log)
    ~shed:(fun ~reason -> log := (id, Shed reason) :: !log)

let test_validate () =
  let engine = Simkit.Engine.create () in
  let rejects config =
    match Nearby.Admission.create ~engine config with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid config accepted"
  in
  rejects
    { Nearby.Admission.capacity = 0; service_rate_per_s = 1.0; batch = 1; policy = Drop_tail };
  rejects
    { Nearby.Admission.capacity = 1; service_rate_per_s = 0.0; batch = 1; policy = Drop_tail };
  rejects
    { Nearby.Admission.capacity = 1; service_rate_per_s = 1.0; batch = 0; policy = Drop_tail };
  rejects
    {
      Nearby.Admission.capacity = 1;
      service_rate_per_s = 1.0;
      batch = 1;
      policy = Deadline { max_wait_ms = 0.0 };
    }

let test_fifo_and_wait_accounting () =
  (* batch 2 at 1000/s: tick 2 ms.  Three submits at t=0 drain as 2 + 1,
     with exact submit-to-dequeue waits on the engine clock. *)
  let log = ref [] in
  let engine, t = mk ~capacity:10 ~rate:1000.0 ~batch:2 Nearby.Admission.Drop_tail in
  Alcotest.(check (float 1e-9)) "tick" 2.0 (Nearby.Admission.tick_ms t);
  Simkit.Engine.schedule engine ~delay:0.0 (fun () ->
      submit_tracked t log 0;
      submit_tracked t log 1;
      submit_tracked t log 2);
  Simkit.Engine.run engine;
  Alcotest.(check int) "drained" 0 (Nearby.Admission.depth t);
  (match List.rev !log with
  | [ (0, Served w0); (1, Served w1); (2, Served w2) ] ->
      Alcotest.(check (float 1e-9)) "first tick" 2.0 w0;
      Alcotest.(check (float 1e-9)) "same tick" 2.0 w1;
      Alcotest.(check (float 1e-9)) "second tick" 4.0 w2
  | _ -> Alcotest.fail "expected 3 serves in FIFO order");
  let totals = Nearby.Admission.totals t in
  Alcotest.(check int) "submitted" 3 totals.Nearby.Admission.submitted;
  Alcotest.(check int) "admitted" 3 totals.Nearby.Admission.admitted;
  Alcotest.(check int) "no sheds" 0 totals.Nearby.Admission.shed_total;
  Alcotest.(check int) "max depth" 3 totals.Nearby.Admission.max_depth;
  Alcotest.(check int) "two drains" 2 totals.Nearby.Admission.drains

let test_drop_tail_bounds_queue () =
  let log = ref [] in
  let engine, t = mk ~capacity:2 ~rate:1000.0 ~batch:1 Nearby.Admission.Drop_tail in
  Simkit.Engine.schedule engine ~delay:0.0 (fun () ->
      for id = 0 to 4 do
        submit_tracked t log id
      done);
  Simkit.Engine.run engine;
  let shed = List.filter (fun (_, o) -> o = Shed "queue_full") !log in
  Alcotest.(check int) "three rejected at the full queue" 3 (List.length shed);
  Alcotest.(check (list int)) "the overflow is the tail" [ 2; 3; 4 ]
    (List.rev_map fst shed);
  let totals = Nearby.Admission.totals t in
  Alcotest.(check int) "admitted the capacity" 2 totals.Nearby.Admission.admitted;
  Alcotest.(check (list (pair string int))) "shed by reason" [ ("queue_full", 3) ]
    totals.Nearby.Admission.shed

let test_deadline_expiry () =
  (* tick 10 ms, deadline 25 ms: requests 3 and 4 are already stale at
     their drain and are discarded without consuming a batch slot. *)
  let log = ref [] in
  let engine, t =
    mk ~capacity:10 ~rate:100.0 ~batch:1
      (Nearby.Admission.Deadline { max_wait_ms = 25.0 })
  in
  Simkit.Engine.schedule engine ~delay:0.0 (fun () ->
      for id = 0 to 3 do
        submit_tracked t log id
      done);
  Simkit.Engine.run engine;
  (match List.rev !log with
  | [ (0, Served w0); (1, Served w1); (2, Shed "deadline"); (3, Shed "deadline") ] ->
      Alcotest.(check (float 1e-9)) "first wait" 10.0 w0;
      Alcotest.(check (float 1e-9)) "second wait" 20.0 w1
  | _ -> Alcotest.fail "expected 2 serves then 2 deadline sheds");
  let totals = Nearby.Admission.totals t in
  Alcotest.(check (list (pair string int))) "shed by reason" [ ("deadline", 2) ]
    totals.Nearby.Admission.shed

let test_on_drain_batches () =
  let sizes = ref [] in
  let log = ref [] in
  let engine, t =
    mk ~capacity:100 ~rate:1000.0 ~batch:4
      ~on_drain:(fun ~served -> sizes := served :: !sizes)
      Nearby.Admission.Drop_tail
  in
  Simkit.Engine.schedule engine ~delay:0.0 (fun () ->
      for id = 0 to 9 do
        submit_tracked t log id
      done);
  Simkit.Engine.run engine;
  Alcotest.(check (list int)) "batch sizes" [ 4; 4; 2 ] (List.rev !sizes)

(* The SLO shedder: overload opens the shed (arrivals rejected with reason
   "slo"), the drained queue closes it again — the hysteresis loop the
   flight recorder sees as shed open / shed close. *)
let test_slo_shedder_cycle () =
  let ts = Simkit.Timeseries.create ~window_ms:100.0 () in
  let metrics = Simkit.Metrics.create () in
  let recorder = Simkit.Flight_recorder.create () in
  let log = ref [] in
  let engine, t =
    mk ~metrics ~timeseries:ts ~recorder ~capacity:1000 ~rate:100.0 ~batch:1
      (Nearby.Admission.slo_shed ~lookback:1 ~burn_threshold:1.0 ~poll_every_ms:50.0
         ~wait_p99_limit_ms:50.0 ())
  in
  (* Overload: 40 submits against a 100/s server build a 400 ms backlog. *)
  Simkit.Engine.schedule engine ~delay:0.0 (fun () ->
      for id = 0 to 39 do
        submit_tracked t log id
      done);
  (* A second wave lands while the breach is open. *)
  Simkit.Engine.schedule engine ~delay:300.0 (fun () ->
      for id = 100 to 109 do
        submit_tracked t log id
      done);
  (* Long after the drain: the shed must have closed again. *)
  let late_outcome = ref None in
  Simkit.Engine.schedule engine ~delay:2_000.0 (fun () ->
      Alcotest.(check bool) "shed closed after the drain" false (Nearby.Admission.shedding t);
      Nearby.Admission.submit t
        ~serve:(fun ~queued_ms -> late_outcome := Some (Served queued_ms))
        ~shed:(fun ~reason -> late_outcome := Some (Shed reason)));
  Simkit.Engine.run engine ~until:3_000.0;
  let slo_shed = List.filter (fun (_, o) -> o = Shed "slo") !log in
  Alcotest.(check int) "the second wave was shed" 10 (List.length slo_shed);
  Alcotest.(check bool) "second wave ids" true
    (List.for_all (fun (id, _) -> id >= 100) slo_shed);
  (match !late_outcome with
  | Some (Served _) -> ()
  | _ -> Alcotest.fail "post-clear submit must be served");
  let totals = Nearby.Admission.totals t in
  Alcotest.(check int) "one shed cycle" 1 totals.Nearby.Admission.slo_sheds_opened;
  Alcotest.(check int) "first wave fully served" 41 totals.Nearby.Admission.admitted;
  (* Transition edges land in the flight recorder under kind "admission". *)
  let admission_events =
    List.filter
      (fun (e : Simkit.Flight_recorder.event) -> e.kind = "admission")
      (Simkit.Flight_recorder.events recorder)
  in
  let details = List.map (fun (e : Simkit.Flight_recorder.event) -> e.detail) admission_events in
  let has prefix =
    List.exists
      (fun d -> String.length d >= String.length prefix && String.sub d 0 (String.length prefix) = prefix)
      details
  in
  Alcotest.(check bool) "shed open recorded" true (has "shed open:");
  Alcotest.(check bool) "shed close recorded" true (has "shed close:");
  (* And the labeled series carry the same story. *)
  Alcotest.(check int) "submitted counter" 51
    (Simkit.Metrics.counter metrics "admission_submitted_total" ~labels:[]);
  Alcotest.(check int) "slo shed counter" 10
    (Simkit.Metrics.counter metrics "admission_shed_total" ~labels:[ ("reason", "slo") ]);
  Alcotest.(check int) "breach edge counter" 1
    (Simkit.Metrics.counter metrics "admission_slo_transitions_total"
       ~labels:[ ("edge", "breach") ]);
  Alcotest.(check int) "clear edge counter" 1
    (Simkit.Metrics.counter metrics "admission_slo_transitions_total"
       ~labels:[ ("edge", "clear") ]);
  (match Simkit.Metrics.gauge metrics Nearby.Admission.depth_series_name ~labels:[] with
  | Some v -> Alcotest.(check (float 1e-9)) "depth gauge drained" 0.0 v
  | None -> Alcotest.fail "depth gauge missing");
  Alcotest.(check bool) "windowed depth series present" true
    (List.mem Nearby.Admission.depth_series_name (Simkit.Timeseries.names ts));
  Alcotest.(check bool) "windowed wait series present" true
    (List.mem Nearby.Admission.wait_series_name (Simkit.Timeseries.names ts))

let test_deterministic () =
  (* No rng anywhere: two identical runs produce identical totals. *)
  let run () =
    let log = ref [] in
    let engine, t = mk ~capacity:3 ~rate:500.0 ~batch:2 Nearby.Admission.Drop_tail in
    Simkit.Engine.schedule engine ~delay:0.0 (fun () ->
        for id = 0 to 7 do
          submit_tracked t log id
        done);
    Simkit.Engine.run engine;
    (Nearby.Admission.totals t, List.rev !log)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical outcomes" true (a = b)

let suite =
  ( "admission",
    [
      Alcotest.test_case "config validation" `Quick test_validate;
      Alcotest.test_case "fifo and wait accounting" `Quick test_fifo_and_wait_accounting;
      Alcotest.test_case "drop-tail bounds the queue" `Quick test_drop_tail_bounds_queue;
      Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
      Alcotest.test_case "on_drain batches" `Quick test_on_drain_batches;
      Alcotest.test_case "slo shedder cycle" `Quick test_slo_shedder_cycle;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
    ] )
