(* Pqueue, Vec, Bitset, Union_find. *)

open Prelude

(* --- Pqueue --- *)

let test_pq_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length" 0 (Pqueue.length q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek q = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      ignore (Pqueue.pop_exn q))

let test_pq_ordering () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~priority:p (int_of_float p)) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_pq_peek_stable () =
  let q = Pqueue.create () in
  Pqueue.push q ~priority:2.0 "b";
  Pqueue.push q ~priority:1.0 "a";
  (match Pqueue.peek q with
  | Some (p, v) ->
      Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
      Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not remove" 2 (Pqueue.length q)

let test_pq_clear_and_reuse () =
  let q = Pqueue.create ~capacity:2 () in
  for i = 1 to 50 do
    Pqueue.push q ~priority:(float_of_int (-i)) i
  done;
  Alcotest.(check int) "grew" 50 (Pqueue.length q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Pqueue.push q ~priority:1.0 99;
  Alcotest.(check bool) "reusable" true (snd (Pqueue.pop_exn q) = 99)

let test_pq_iter_unordered () =
  let q = Pqueue.create () in
  List.iter (fun i -> Pqueue.push q ~priority:(float_of_int i) i) [ 3; 1; 2 ];
  let sum = ref 0 in
  Pqueue.iter_unordered q (fun _ v -> sum := !sum + v);
  Alcotest.(check int) "visits all" 6 !sum

let qcheck_pq_sorts =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:300
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q ~priority:p ()) priorities;
      let rec drain acc =
        match Pqueue.pop q with Some (p, ()) -> drain (p :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare priorities)

(* --- Vec --- *)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check bool) "pop" true (Vec.pop v = Some 198);
  Alcotest.(check int) "pop shrinks" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds") (fun () ->
      Vec.set v (-1) 0)

let test_vec_roundtrip () =
  let a = [| 4; 7; 1; 9 |] in
  Alcotest.(check (array int)) "of/to array" a (Vec.to_array (Vec.of_array a))

let test_vec_sort_iter () =
  let v = Vec.of_array [| 3; 1; 2 |] in
  Vec.sort v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Vec.to_array v);
  let acc = ref [] in
  Vec.iteri v (fun i x -> acc := (i, x) :: !acc);
  Alcotest.(check bool) "iteri order" true (List.rev !acc = [ (0, 1); (1, 2); (2, 3) ]);
  Alcotest.(check bool) "exists" true (Vec.exists v (fun x -> x = 2));
  Alcotest.(check bool) "not exists" false (Vec.exists v (fun x -> x = 5));
  Vec.clear v;
  Alcotest.(check int) "clear" 0 (Vec.length v);
  Alcotest.(check bool) "pop empty" true (Vec.pop v = None)

(* --- Bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity b);
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem b 1);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal b)

let test_bitset_add_idempotent () =
  let b = Bitset.create 8 in
  Bitset.add b 3;
  Bitset.add b 3;
  Alcotest.(check int) "no double count" 1 (Bitset.cardinal b)

let test_bitset_iter_clear () =
  let b = Bitset.create 20 in
  List.iter (Bitset.add b) [ 2; 5; 19 ];
  let acc = ref [] in
  Bitset.iter b (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "iter ascending" [ 2; 5; 19 ] (List.rev !acc);
  Bitset.clear b;
  Alcotest.(check int) "clear" 0 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 4 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds") (fun () ->
      ignore (Bitset.mem b 4))

let qcheck_bitset_model =
  QCheck.Test.make ~name:"bitset behaves like a set of ints" ~count:200
    QCheck.(list (int_range 0 63))
    (fun ops ->
      let b = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun i ->
          Bitset.add b i;
          Hashtbl.replace model i ())
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && List.for_all (fun i -> Bitset.mem b i) ops)

(* --- Union_find --- *)

let test_uf_basic () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial sets" 6 (Union_find.count_sets uf);
  Alcotest.(check bool) "union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "sets" 5 (Union_find.count_sets uf)

let test_uf_transitivity () =
  let uf = Union_find.create 10 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "0 ~ 3" true (Union_find.same uf 0 3);
  Alcotest.(check int) "one root" (Union_find.find uf 0) (Union_find.find uf 3)

let qcheck_uf_count =
  QCheck.Test.make ~name:"union_find set count matches merges" ~count:200
    QCheck.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      let merges = List.fold_left (fun acc (a, b) -> if Union_find.union uf a b then acc + 1 else acc) 0 pairs in
      Union_find.count_sets uf = 20 - merges)

(* --- Domain_pool --- *)

(* 2-domain pools (1 spawned worker + the caller) work even on a 1-core
   box, so these tests exercise the real cross-domain path everywhere. *)

let test_pool_runs_all_tasks () =
  let pool = Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 2 (Domain_pool.size pool);
      let results = Array.make 100 0 in
      Domain_pool.run pool 100 (fun i -> results.(i) <- i * i);
      Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i) v) results;
      (* The pool is persistent: a second job reuses the same workers. *)
      let seen = Array.make 8 0 in
      Domain_pool.run pool 8 (fun i -> seen.(i) <- i + 1);
      Alcotest.(check int) "second job" 36 (Array.fold_left ( + ) 0 seen))

let test_pool_propagates_exception () =
  let pool = Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      (match Domain_pool.run pool 5 (fun i -> if i = 3 then failwith "boom") with
      | exception Failure m -> Alcotest.(check string) "exn" "boom" m
      | () -> Alcotest.fail "task exception swallowed");
      (* A failed job must not poison the pool. *)
      let ok = Array.make 4 false in
      Domain_pool.run pool 4 (fun i -> ok.(i) <- true);
      Alcotest.(check bool) "pool alive after exn" true (Array.for_all Fun.id ok))

let test_pool_reentrant_falls_back () =
  let pool = Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let inner = Atomic.make 0 in
      (* [run] from inside a task must degrade to sequential execution on
         the calling domain, not deadlock on the busy pool. *)
      Domain_pool.run pool 2 (fun _ -> Domain_pool.run pool 3 (fun _ -> Atomic.incr inner));
      Alcotest.(check int) "inner tasks ran" 6 (Atomic.get inner);
      Domain_pool.shutdown pool;
      (* Shutdown is idempotent (the Fun.protect finalizer runs it again). *)
      Domain_pool.shutdown pool)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "containers",
    [
      Alcotest.test_case "pqueue empty" `Quick test_pq_empty;
      Alcotest.test_case "pqueue ordering" `Quick test_pq_ordering;
      Alcotest.test_case "pqueue peek" `Quick test_pq_peek_stable;
      Alcotest.test_case "pqueue clear/reuse" `Quick test_pq_clear_and_reuse;
      Alcotest.test_case "pqueue iter_unordered" `Quick test_pq_iter_unordered;
      q qcheck_pq_sorts;
      Alcotest.test_case "vec basic" `Quick test_vec_basic;
      Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
      Alcotest.test_case "vec roundtrip" `Quick test_vec_roundtrip;
      Alcotest.test_case "vec sort/iter" `Quick test_vec_sort_iter;
      Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
      Alcotest.test_case "bitset idempotent add" `Quick test_bitset_add_idempotent;
      Alcotest.test_case "bitset iter/clear" `Quick test_bitset_iter_clear;
      Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
      q qcheck_bitset_model;
      Alcotest.test_case "union_find basic" `Quick test_uf_basic;
      Alcotest.test_case "union_find transitivity" `Quick test_uf_transitivity;
      q qcheck_uf_count;
      Alcotest.test_case "domain_pool runs all tasks" `Quick test_pool_runs_all_tasks;
      Alcotest.test_case "domain_pool propagates exceptions" `Quick test_pool_propagates_exception;
      Alcotest.test_case "domain_pool reentrant fallback" `Quick test_pool_reentrant_falls_back;
    ] )
