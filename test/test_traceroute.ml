(* Path, Route_oracle, Probe, Truncate. *)

open Traceroute

(* The paper-drawing topology gives known routes. *)
let drawing () = Eval.Paper_drawing.build ()

let test_path_of_routers () =
  let p = Path.of_routers ~src:1 ~dst:3 [ 1; 2; 3 ] in
  Alcotest.(check int) "hop count" 2 (Path.hop_count p);
  Alcotest.(check bool) "complete" true (Path.is_complete p);
  Alcotest.(check (array int)) "known routers" [| 1; 2; 3 |] (Path.known_routers p);
  Alcotest.(check int) "no anonymous" 0 (Path.anonymous_count p);
  Alcotest.check_raises "must start at src" (Invalid_argument "Path.of_routers: route must start at src")
    (fun () -> ignore (Path.of_routers ~src:9 ~dst:3 [ 1; 2; 3 ]))

let test_path_anonymous () =
  let p = { Path.src = 0; dst = 2; hops = [| Path.Known 0; Path.Anonymous; Path.Known 2 |] } in
  Alcotest.(check (array int)) "skips anonymous" [| 0; 2 |] (Path.known_routers p);
  Alcotest.(check int) "counts anonymous" 1 (Path.anonymous_count p);
  Alcotest.(check bool) "still complete" true (Path.is_complete p);
  let cut = { Path.src = 0; dst = 9; hops = [| Path.Known 0; Path.Known 1 |] } in
  Alcotest.(check bool) "incomplete" false (Path.is_complete cut)

let test_path_pp_equal () =
  let p = { Path.src = 0; dst = 2; hops = [| Path.Known 0; Path.Anonymous; Path.Known 2 |] } in
  Alcotest.(check string) "pp" "0 -> * -> 2" (Format.asprintf "%a" Path.pp p);
  Alcotest.(check bool) "equal reflexive" true (Path.equal p p);
  Alcotest.(check bool) "not equal" false (Path.equal p (Path.of_routers ~src:0 ~dst:2 [ 0; 1; 2 ]))

let test_oracle_routes () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  Alcotest.(check (list int)) "p1 route" [ d.p1; 4; 5; d.rc; d.ra; d.lmk ]
    (Route_oracle.route oracle ~src:d.p1 ~dst:d.lmk);
  Alcotest.(check (list int)) "self route" [ d.p1 ] (Route_oracle.route oracle ~src:d.p1 ~dst:d.p1);
  Alcotest.(check int) "route length" 5 (Route_oracle.route_length oracle ~src:d.p1 ~dst:d.lmk)

let test_oracle_sink_tree_property () =
  (* Destination-based forwarding: if w is on route(v, dst) then
     route(w, dst) is exactly the suffix starting at w. *)
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 300) ~seed:3 in
  let oracle = Route_oracle.create map.graph in
  let dst = map.core.(0) in
  Array.iter
    (fun leaf ->
      let route = Route_oracle.route oracle ~src:leaf ~dst in
      match route with
      | [] -> Alcotest.fail "unreachable in a connected map"
      | _ :: rest ->
          let rec check_suffix = function
            | [] -> ()
            | w :: _ as suffix ->
                Alcotest.(check (list int)) "suffix property" suffix
                  (Route_oracle.route oracle ~src:w ~dst);
                check_suffix (List.tl suffix)
          in
          (* Checking the full suffix chain is O(len^2) but routes are short. *)
          check_suffix rest)
    (Array.sub map.leaves 0 10)

let test_oracle_routes_are_shortest () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 300) ~seed:4 in
  let oracle = Route_oracle.create map.graph in
  let dst = map.core.(1) in
  Array.iter
    (fun leaf ->
      let hops = Route_oracle.route_length oracle ~src:leaf ~dst in
      Alcotest.(check int) "oracle route = BFS distance" (Topology.Bfs.distance map.graph leaf dst) hops)
    (Array.sub map.leaves 0 20)

let test_oracle_next_hop () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  Alcotest.(check (option int)) "next hop from p1" (Some 4) (Route_oracle.next_hop oracle ~dst:d.lmk d.p1);
  Alcotest.(check (option int)) "at destination" None (Route_oracle.next_hop oracle ~dst:d.lmk d.lmk)

let test_oracle_caching () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  Alcotest.(check int) "no trees yet" 0 (Route_oracle.cached_destinations oracle);
  ignore (Route_oracle.route oracle ~src:d.p1 ~dst:d.lmk);
  ignore (Route_oracle.route oracle ~src:d.p2 ~dst:d.lmk);
  Alcotest.(check int) "one tree for one destination" 1 (Route_oracle.cached_destinations oracle)

let test_oracle_weighted () =
  (* Weighted oracle must follow the cheap detour. *)
  let g = Topology.Graph.of_edges ~node_count:3 [ (0, 1); (1, 2); (0, 2) ] in
  let weight u v = match (min u v, max u v) with 0, 2 -> 10.0 | _ -> 1.0 in
  let oracle = Route_oracle.create_weighted g ~weight in
  Alcotest.(check (list int)) "detour route" [ 0; 1; 2 ] (Route_oracle.route oracle ~src:0 ~dst:2)

let test_oracle_inflated () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 300) ~seed:6 in
  Alcotest.check_raises "negative inflation"
    (Invalid_argument "Route_oracle.create_inflated: negative inflation") (fun () ->
      ignore (Route_oracle.create_inflated map.graph ~inflation:(-1.0) ~seed:1));
  let inflated = Route_oracle.create_inflated map.graph ~inflation:3.0 ~seed:2 in
  let dst = map.core.(0) in
  (* Still valid routes: reach the destination, and every consecutive pair
     is a real link (destination-consistency is checked by the sink-tree
     property below). *)
  Array.iter
    (fun leaf ->
      match Route_oracle.route inflated ~src:leaf ~dst with
      | [] -> Alcotest.fail "unreachable"
      | route ->
          Alcotest.(check int) "starts at src" leaf (List.hd route);
          Alcotest.(check int) "ends at dst" dst (List.nth route (List.length route - 1));
          let rec check_links = function
            | a :: (b :: _ as rest) ->
                Alcotest.(check bool) "link exists" true (Topology.Graph.mem_edge map.graph a b);
                check_links rest
            | _ -> ()
          in
          check_links route;
          (* Sink-tree property survives inflation. *)
          (match route with
          | _ :: (w :: _ as suffix) ->
              Alcotest.(check (list int)) "suffix property" suffix
                (Route_oracle.route inflated ~src:w ~dst);
              ignore w
          | _ -> ()))
    (Array.sub map.leaves 0 10);
  (* Deterministic: same seed, same routes. *)
  let again = Route_oracle.create_inflated map.graph ~inflation:3.0 ~seed:2 in
  Alcotest.(check (list int)) "deterministic"
    (Route_oracle.route inflated ~src:map.leaves.(0) ~dst)
    (Route_oracle.route again ~src:map.leaves.(0) ~dst);
  (* Zero inflation = valid shortest routes (same length as BFS). *)
  let zero = Route_oracle.create_inflated map.graph ~inflation:0.0 ~seed:3 in
  Array.iter
    (fun leaf ->
      Alcotest.(check int) "zero inflation is shortest"
        (Topology.Bfs.distance map.graph leaf dst)
        (Route_oracle.route_length zero ~src:leaf ~dst))
    (Array.sub map.leaves 0 10)

let test_probe_perfect () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  let r = Probe.run oracle ~src:d.p1 ~dst:d.lmk in
  Alcotest.(check bool) "complete" true (Path.is_complete r.path);
  Alcotest.(check (array int)) "records the route" [| d.p1; 4; 5; d.rc; d.ra; d.lmk |]
    (Path.known_routers r.path);
  Alcotest.(check int) "probe packets = hops" 5 r.probes_sent;
  (match r.rtt_ms with
  | Some rtt -> Alcotest.(check (float 1e-9)) "rtt = 2 x 5 hops" 10.0 rtt
  | None -> Alcotest.fail "expected an RTT")

let test_probe_max_ttl () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  let r = Probe.run ~config:{ Probe.default_config with max_ttl = 2 } oracle ~src:d.p1 ~dst:d.lmk in
  Alcotest.(check bool) "incomplete" false (Path.is_complete r.path);
  Alcotest.(check int) "recorded 2 hops + src" 3 (Array.length r.path.hops);
  Alcotest.(check bool) "no rtt" true (r.rtt_ms = None)

let test_probe_drops () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  let rng = Prelude.Prng.create 5 in
  (* With 90% drop probability interior hops go anonymous, but src and dst
     always respond. *)
  let r =
    Probe.run
      ~config:{ Probe.default_config with drop_prob = 0.9 }
      ~rng oracle ~src:d.p1 ~dst:d.lmk
  in
  Alcotest.(check bool) "complete (dst replies)" true (Path.is_complete r.path);
  Alcotest.(check bool) "some hops anonymous" true (Path.anonymous_count r.path > 0)

let test_probe_multiprobe_resists_drops () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  (* With many probes per hop the chance of a fully anonymous hop collapses. *)
  let anonymous probes_per_hop =
    let rng = Prelude.Prng.create 6 in
    let total = ref 0 in
    for _ = 1 to 50 do
      let r =
        Probe.run
          ~config:{ Probe.default_config with drop_prob = 0.5; probes_per_hop }
          ~rng oracle ~src:d.p1 ~dst:d.lmk
      in
      total := !total + Path.anonymous_count r.path
    done;
    !total
  in
  Alcotest.(check bool) "more probes, fewer holes" true (anonymous 5 < anonymous 1)

let test_probe_invalid_config () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  Alcotest.check_raises "bad ttl" (Invalid_argument "Probe.run: max_ttl must be >= 1") (fun () ->
      ignore (Probe.run ~config:{ Probe.default_config with max_ttl = 0 } oracle ~src:d.p1 ~dst:d.lmk))

let test_ping () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  Alcotest.(check (float 1e-9)) "hop-count rtt" 10.0 (Probe.ping oracle ~src:d.p1 ~dst:d.lmk);
  let latency = Topology.Latency.assign d.graph Topology.Latency.Hop_count ~seed:1 in
  Alcotest.(check (float 1e-9)) "latency-table rtt" 10.0 (Probe.ping ~latency oracle ~src:d.p1 ~dst:d.lmk);
  let rng = Prelude.Prng.create 7 in
  let noisy = Probe.ping ~rng oracle ~src:d.p1 ~dst:d.lmk in
  Alcotest.(check bool) "noise within 5%" true (abs_float (noisy -. 10.0) <= 0.5 +. 1e-9)

let full_path () = Path.of_routers ~src:0 ~dst:9 [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_truncate_full () =
  let p = full_path () in
  Alcotest.(check bool) "identity" true (Path.equal p (Truncate.apply Truncate.Full p))

let test_truncate_every_k () =
  let p = full_path () in
  let reduced = Truncate.apply (Truncate.Every_k 3) p in
  Alcotest.(check (array int)) "stride 3 plus endpoints" [| 0; 3; 6; 9 |] (Path.known_routers reduced)

let test_truncate_last_k () =
  let p = full_path () in
  let reduced = Truncate.apply (Truncate.Last_k 3) p in
  Alcotest.(check (array int)) "last 3 plus src" [| 0; 7; 8; 9 |] (Path.known_routers reduced)

let test_truncate_first_k () =
  let p = full_path () in
  let reduced = Truncate.apply (Truncate.First_k 3) p in
  Alcotest.(check (array int)) "first 3 plus dst" [| 0; 1; 2; 9 |] (Path.known_routers reduced)

let test_truncate_min_degree () =
  let d = drawing () in
  let oracle = Route_oracle.create d.graph in
  let r = Probe.run oracle ~src:d.p1 ~dst:d.lmk in
  let reduced = Truncate.apply ~graph:d.graph (Truncate.Min_degree 4) r.path in
  (* Core routers rc (degree 4) and ra (degree 4) survive; stubs r1 (3) and
     r2 (2) do not; endpoints always kept. *)
  Alcotest.(check (array int)) "core only" [| d.p1; d.rc; d.ra; d.lmk |] (Path.known_routers reduced);
  Alcotest.check_raises "needs graph" (Invalid_argument "Truncate.apply: Min_degree needs ~graph")
    (fun () -> ignore (Truncate.apply (Truncate.Min_degree 3) r.path))

let test_truncate_degenerate () =
  let single = Path.of_routers ~src:5 ~dst:5 [ 5 ] in
  Alcotest.(check bool) "single hop unchanged" true
    (Path.equal single (Truncate.apply (Truncate.Every_k 4) single));
  let empty = { Path.src = 0; dst = 1; hops = [||] } in
  Alcotest.(check bool) "empty unchanged" true (Path.equal empty (Truncate.apply Truncate.Full empty))

let test_probe_cost () =
  Alcotest.(check int) "full" 9 (Truncate.probe_cost Truncate.Full ~full_hops:9);
  Alcotest.(check int) "every 3 of 9" 3 (Truncate.probe_cost (Truncate.Every_k 3) ~full_hops:9);
  Alcotest.(check int) "every 4 of 9 rounds up" 3 (Truncate.probe_cost (Truncate.Every_k 4) ~full_hops:9);
  Alcotest.(check int) "last 3" 3 (Truncate.probe_cost (Truncate.Last_k 3) ~full_hops:9);
  Alcotest.(check int) "last k > hops" 4 (Truncate.probe_cost (Truncate.Last_k 9) ~full_hops:4);
  Alcotest.(check int) "min degree probes all" 9 (Truncate.probe_cost (Truncate.Min_degree 3) ~full_hops:9);
  Alcotest.(check int) "zero hops" 0 (Truncate.probe_cost Truncate.Full ~full_hops:0)

let test_describe () =
  Alcotest.(check string) "full" "full" (Truncate.describe Truncate.Full);
  Alcotest.(check string) "every" "every-2" (Truncate.describe (Truncate.Every_k 2));
  Alcotest.(check string) "core" "core-deg>=4" (Truncate.describe (Truncate.Min_degree 4))

let qcheck_truncate_keeps_endpoints =
  QCheck.Test.make ~name:"truncate always keeps src and dst hops" ~count:200
    QCheck.(pair (int_range 1 30) (int_range 1 8))
    (fun (len, k) ->
      let routers = List.init (len + 1) (fun i -> i) in
      let p = Path.of_routers ~src:0 ~dst:len routers in
      List.for_all
        (fun strategy ->
          let reduced = Truncate.apply strategy p in
          let known = Path.known_routers reduced in
          Array.length known >= 1 && known.(0) = 0 && known.(Array.length known - 1) = len)
        [ Truncate.Full; Truncate.Every_k k; Truncate.Last_k k; Truncate.First_k k ])

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "traceroute",
    [
      Alcotest.test_case "path of_routers" `Quick test_path_of_routers;
      Alcotest.test_case "path anonymous" `Quick test_path_anonymous;
      Alcotest.test_case "path pp/equal" `Quick test_path_pp_equal;
      Alcotest.test_case "oracle routes" `Quick test_oracle_routes;
      Alcotest.test_case "oracle sink-tree property" `Quick test_oracle_sink_tree_property;
      Alcotest.test_case "oracle routes are shortest" `Quick test_oracle_routes_are_shortest;
      Alcotest.test_case "oracle next hop" `Quick test_oracle_next_hop;
      Alcotest.test_case "oracle caching" `Quick test_oracle_caching;
      Alcotest.test_case "oracle weighted" `Quick test_oracle_weighted;
      Alcotest.test_case "oracle inflated" `Quick test_oracle_inflated;
      Alcotest.test_case "probe perfect" `Quick test_probe_perfect;
      Alcotest.test_case "probe max ttl" `Quick test_probe_max_ttl;
      Alcotest.test_case "probe drops" `Quick test_probe_drops;
      Alcotest.test_case "probe multi-probe" `Quick test_probe_multiprobe_resists_drops;
      Alcotest.test_case "probe invalid config" `Quick test_probe_invalid_config;
      Alcotest.test_case "ping" `Quick test_ping;
      Alcotest.test_case "truncate full" `Quick test_truncate_full;
      Alcotest.test_case "truncate every-k" `Quick test_truncate_every_k;
      Alcotest.test_case "truncate last-k" `Quick test_truncate_last_k;
      Alcotest.test_case "truncate first-k" `Quick test_truncate_first_k;
      Alcotest.test_case "truncate min-degree" `Quick test_truncate_min_degree;
      Alcotest.test_case "truncate degenerate" `Quick test_truncate_degenerate;
      Alcotest.test_case "probe cost" `Quick test_probe_cost;
      Alcotest.test_case "describe" `Quick test_describe;
      q qcheck_truncate_keeps_endpoints;
    ] )
