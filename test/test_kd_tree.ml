(* Kd_tree: exact k-NN against brute force. *)

open Coord

let random_points rng n dims span =
  Array.init n (fun _ -> Array.init dims (fun _ -> Prelude.Prng.float rng span))

let brute_force points query ~k ~exclude =
  Array.to_list (Array.mapi (fun i p -> (Vector.distance p query, i)) points)
  |> List.filter (fun (_, i) -> not (exclude i))
  |> List.sort compare
  |> List.filteri (fun j _ -> j < k)
  |> List.map (fun (d, i) -> (i, d))

let test_build_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Kd_tree.build: empty point set") (fun () ->
      ignore (Kd_tree.build [||]));
  Alcotest.check_raises "mixed dims" (Invalid_argument "Kd_tree.build: mixed dimensions") (fun () ->
      ignore (Kd_tree.build [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_small_exact () =
  let points = [| [| 0.0; 0.0 |]; [| 1.0; 0.0 |]; [| 0.0; 2.0 |]; [| 5.0; 5.0 |] |] in
  let t = Kd_tree.build points in
  Alcotest.(check int) "size" 4 (Kd_tree.size t);
  Alcotest.(check int) "dims" 2 (Kd_tree.dims t);
  Alcotest.(check int) "nearest to origin" 0 (Kd_tree.nearest t [| 0.1; 0.1 |]);
  let knn = Kd_tree.k_nearest t [| 0.0; 0.0 |] ~k:2 () in
  Alcotest.(check (list int)) "two closest" [ 0; 1 ] (List.map fst knn);
  let excl = Kd_tree.k_nearest t [| 0.0; 0.0 |] ~k:2 ~exclude:(fun i -> i = 0) () in
  Alcotest.(check (list int)) "exclusion respected" [ 1; 2 ] (List.map fst excl);
  Alcotest.(check (list (pair int (float 1e-9)))) "k = 0" [] (Kd_tree.k_nearest t [| 0.0; 0.0 |] ~k:0 ())

let test_duplicate_points () =
  (* All-equal coordinates exercise the degenerate-split path. *)
  let points = Array.make 50 [| 3.0; 3.0; 3.0 |] in
  let t = Kd_tree.build points in
  let knn = Kd_tree.k_nearest t [| 3.0; 3.0; 3.0 |] ~k:5 () in
  Alcotest.(check (list int)) "ties resolve to lowest indices" [ 0; 1; 2; 3; 4 ] (List.map fst knn)

let test_dimension_mismatch () =
  let t = Kd_tree.build [| [| 1.0; 2.0 |] |] in
  Alcotest.check_raises "query dims" (Invalid_argument "Kd_tree: dimension mismatch") (fun () ->
      ignore (Kd_tree.nearest t [| 1.0 |]))

let qcheck_matches_bruteforce =
  QCheck.Test.make ~name:"kd-tree k-NN = brute force" ~count:150
    QCheck.(triple small_int (int_range 1 200) (int_range 1 4))
    (fun (seed, n, dims) ->
      let rng = Prelude.Prng.create seed in
      let points = random_points rng n dims 100.0 in
      let t = Kd_tree.build points in
      let query = Array.init dims (fun _ -> Prelude.Prng.float rng 100.0) in
      let k = 1 + Prelude.Prng.int rng 8 in
      let exclude i = i mod 7 = 3 in
      Kd_tree.k_nearest t query ~k ~exclude () = brute_force points query ~k ~exclude)

let qcheck_nearest_member_is_self =
  QCheck.Test.make ~name:"kd-tree nearest of a member point is itself" ~count:100
    QCheck.(pair small_int (int_range 1 150))
    (fun (seed, n) ->
      let rng = Prelude.Prng.create (seed + 5) in
      let points = random_points rng n 3 50.0 in
      let t = Kd_tree.build points in
      let probe = Prelude.Prng.int rng n in
      (* Another point could coincide, in which case the lower index wins —
         accept either the probe or an identical point before it. *)
      let found = Kd_tree.nearest t points.(probe) in
      found = probe || points.(found) = points.(probe))

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "kd_tree",
    [
      Alcotest.test_case "build validation" `Quick test_build_validation;
      Alcotest.test_case "small exact" `Quick test_small_exact;
      Alcotest.test_case "duplicate points" `Quick test_duplicate_points;
      Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
      q qcheck_matches_bruteforce;
      q qcheck_nearest_member_is_self;
    ] )
