(* Cluster: replicated management tier — direct-path equivalence, write
   fan-out, crash/failover, anti-entropy, and join termination under loss. *)

let detector_config =
  { Simkit.Failure_detector.heartbeat_period_ms = 100.0; timeout_ms = 350.0; heartbeat_bytes = 32 }

let rpc_config =
  {
    Simkit.Rpc.timeout_ms = 100.0;
    max_attempts = 4;
    backoff_base_ms = 50.0;
    backoff_multiplier = 2.0;
    jitter_frac = 0.0;
  }

type fixture = {
  map : Topology.Gen_magoni.t;
  oracle : Traceroute.Route_oracle.t;
  landmarks : Topology.Graph.node array;
  replica_routers : Topology.Graph.node array;
  engine : Simkit.Engine.t;
  transport : Simkit.Transport.t;
}

let fixture ?(routers = 300) ?(replicas = 3) ?rng ?loss_prob ~seed () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params routers) ~seed in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let place_rng = Prelude.Prng.create (seed + 1000) in
  let landmarks =
    Nearby.Landmark.place map.graph Nearby.Landmark.Medium_degree ~count:3 ~rng:place_rng
  in
  let replica_routers =
    Nearby.Landmark.place map.graph Nearby.Landmark.High_degree ~count:replicas ~rng:place_rng
  in
  let engine = Simkit.Engine.create () in
  let transport = Simkit.Transport.create ?rng ?loss_prob engine oracle in
  { map; oracle; landmarks; replica_routers; engine; transport }

let make_server fx () = Nearby.Server.create fx.oracle ~landmarks:fx.landmarks

let make_cluster ?(detector_config = detector_config) fx =
  Nearby.Cluster.create ~detector_config ~transport:fx.transport
    ~client_router:fx.map.core.(0) ~make_server:(make_server fx)
    ~restore_server:(fun data -> Nearby.Server.restore fx.oracle data)
    ~routers:fx.replica_routers ()

(* Run [peers] joins through [protocol], one every [spacing] ms, and return
   (completed replies by peer, failed count). *)
let run_joins ?(spacing = 10.0) fx protocol ~peers ~k ~horizon =
  let replies = Hashtbl.create peers in
  let failed = ref 0 in
  for peer = 0 to peers - 1 do
    Simkit.Engine.schedule_at fx.engine ~time:(float_of_int peer *. spacing) (fun () ->
        Nearby.Protocol.join protocol ~peer
          ~attach_router:fx.map.leaves.(peer mod Array.length fx.map.leaves)
          ~k
          ~on_complete:(fun _info reply -> Hashtbl.replace replies peer reply)
          ~on_failure:(fun () -> incr failed))
  done;
  Simkit.Engine.run fx.engine ~until:horizon;
  (replies, !failed)

(* Arrival spacing wide enough that every join finishes before the next
   one starts (join delays are tens of ms on these maps): registration
   order is then the arrival order in every implementation, so replies can
   be compared content-for-content. *)
let serial_spacing = 500.0

let test_direct_path_matches_plain_server () =
  (* The 1-replica direct path must reproduce the pre-cluster protocol
     exactly: same neighbor replies, same server-side accounting. *)
  let fx = fixture ~seed:21 () in
  let peers = 15 and k = 4 in
  let reference = make_server fx () in
  let expected =
    List.init peers (fun peer ->
        ignore
          (Nearby.Server.join reference ~peer
             ~attach_router:fx.map.leaves.(peer mod Array.length fx.map.leaves));
        Nearby.Server.neighbors reference ~peer ~k)
  in
  let server = make_server fx () in
  let protocol =
    Nearby.Protocol.create ~engine:fx.engine ~server_router:fx.replica_routers.(0) server
  in
  let replies, failed =
    run_joins ~spacing:serial_spacing fx protocol ~peers ~k ~horizon:60_000.0
  in
  Alcotest.(check int) "no failures" 0 failed;
  Alcotest.(check int) "all completed" peers (Hashtbl.length replies);
  List.iteri
    (fun peer expect ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "peer %d reply identical" peer)
        expect (Hashtbl.find replies peer))
    expected;
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " counter identical")
        (Simkit.Trace.counter (Nearby.Server.trace reference) name)
        (Simkit.Trace.counter (Nearby.Server.trace server) name))
    [ "join"; "query"; "probe_packets"; "wire_bytes" ]

let test_resilient_single_replica_loss_free_matches_direct () =
  (* A 1-replica cluster behind the RPC layer with a clean network keeps
     the same replies and the same server accounting as the direct path —
     the RPC machinery must not change results, only survive faults. *)
  let direct = fixture ~replicas:1 ~seed:22 () in
  let reference = make_server direct () in
  let protocol_direct =
    Nearby.Protocol.create ~engine:direct.engine ~server_router:direct.replica_routers.(0)
      reference
  in
  let peers = 15 and k = 4 in
  let expected, failed_direct =
    run_joins ~spacing:serial_spacing direct protocol_direct ~peers ~k ~horizon:60_000.0
  in
  Alcotest.(check int) "direct all complete" 0 failed_direct;
  let fx = fixture ~replicas:1 ~seed:22 () in
  let cluster = make_cluster fx in
  let rpc = Simkit.Rpc.create ~config:rpc_config fx.transport in
  let protocol = Nearby.Protocol.create_resilient ~rpc cluster in
  let replies, failed =
    run_joins ~spacing:serial_spacing fx protocol ~peers ~k ~horizon:60_000.0
  in
  Alcotest.(check int) "resilient all complete" 0 failed;
  for peer = 0 to peers - 1 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "peer %d reply identical" peer)
      (Hashtbl.find expected peer) (Hashtbl.find replies peer)
  done;
  (* Byte-identical registered state: same landmark, same recorded path,
     same probe cost for every peer. *)
  let server = Nearby.Cluster.server_of cluster 0 in
  for peer = 0 to peers - 1 do
    let info s = Option.get (Nearby.Server.info s peer) in
    let a = info reference and b = info server in
    Alcotest.(check bool)
      (Printf.sprintf "peer %d registration identical" peer)
      true
      (a.landmark = b.landmark && a.recorded_path = b.recorded_path
     && a.probes_spent = b.probes_spent && a.attach_router = b.attach_router)
  done;
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " counter identical")
        (Simkit.Trace.counter (Nearby.Server.trace reference) name)
        (Simkit.Trace.counter (Nearby.Server.trace server) name))
    [ "join"; "query"; "probe_packets"; "wire_bytes" ];
  Alcotest.(check int) "single attempt per join" peers
    (Simkit.Trace.counter (Simkit.Rpc.trace rpc) "rpc_attempts")

let test_fan_out_replicates_to_all () =
  let fx = fixture ~seed:23 () in
  let cluster = make_cluster fx in
  let rpc = Simkit.Rpc.create ~config:rpc_config fx.transport in
  let protocol = Nearby.Protocol.create_resilient ~rpc cluster in
  let peers = 20 in
  let _, failed = run_joins fx protocol ~peers ~k:4 ~horizon:60_000.0 in
  Alcotest.(check int) "no failures" 0 failed;
  (* Loss-free network: the write fan-out alone (no anti-entropy ran) must
     land every registration on every replica. *)
  for i = 0 to Nearby.Cluster.replica_count cluster - 1 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d holds all peers" i)
      peers
      (Nearby.Server.peer_count (Nearby.Cluster.server_of cluster i))
  done;
  Alcotest.(check bool) "consistent" true (Nearby.Cluster.consistent cluster);
  Nearby.Cluster.check_invariants cluster;
  let trace = Nearby.Cluster.trace cluster in
  Alcotest.(check int) "2 replication sends per join" (peers * 2)
    (Simkit.Trace.counter trace "cluster_replicate_send");
  Alcotest.(check int) "all applied" (peers * 2)
    (Simkit.Trace.counter trace "cluster_replicate_apply")

let test_crash_primary_fails_over () =
  (* Replica 0 is down across the middle of the arrival window; joins keep
     completing via the other replicas and the cluster converges once the
     primary is restored and a sync round runs. *)
  let fx = fixture ~seed:24 () in
  let cluster = make_cluster fx in
  let rpc = Simkit.Rpc.create ~config:rpc_config fx.transport in
  let protocol = Nearby.Protocol.create_resilient ~rpc cluster in
  Simkit.Engine.schedule_at fx.engine ~time:50.0 (fun () -> Nearby.Cluster.crash cluster 0);
  Simkit.Engine.schedule_at fx.engine ~time:2_000.0 (fun () -> Nearby.Cluster.recover cluster 0);
  let peers = 30 in
  let replies, failed = run_joins fx protocol ~peers ~k:4 ~horizon:60_000.0 in
  Alcotest.(check int) "every join completed" peers (Hashtbl.length replies);
  Alcotest.(check int) "none failed" 0 failed;
  Nearby.Cluster.sync_round cluster;
  Alcotest.(check bool) "consistent after sync" true (Nearby.Cluster.consistent cluster);
  for i = 0 to Nearby.Cluster.replica_count cluster - 1 do
    Alcotest.(check bool) (Printf.sprintf "replica %d live" i) true (Nearby.Cluster.is_alive cluster i);
    Alcotest.(check int)
      (Printf.sprintf "replica %d holds all peers" i)
      peers
      (Nearby.Server.peer_count (Nearby.Cluster.server_of cluster i))
  done;
  Nearby.Cluster.check_invariants cluster

let test_anti_entropy_heals_stale_replica () =
  (* Replica 2 is dead for the whole arrival window, so it misses every
     fan-out write; one sync round after recovery rebuilds it from a
     snapshot of the most complete replica. *)
  let fx = fixture ~seed:25 () in
  let cluster = make_cluster fx in
  let rpc = Simkit.Rpc.create ~config:rpc_config fx.transport in
  let protocol = Nearby.Protocol.create_resilient ~rpc cluster in
  Nearby.Cluster.crash cluster 2;
  let peers = 20 in
  let _, failed = run_joins fx protocol ~peers ~k:4 ~horizon:60_000.0 in
  Alcotest.(check int) "no failures" 0 failed;
  Nearby.Cluster.recover cluster 2;
  Alcotest.(check int) "stale replica missed the writes" 0
    (Nearby.Server.peer_count (Nearby.Cluster.server_of cluster 2));
  Alcotest.(check bool) "inconsistent before sync" false (Nearby.Cluster.consistent cluster);
  Nearby.Cluster.sync_round cluster;
  Alcotest.(check bool) "consistent after sync" true (Nearby.Cluster.consistent cluster);
  Alcotest.(check int) "healed" peers
    (Nearby.Server.peer_count (Nearby.Cluster.server_of cluster 2));
  let trace = Nearby.Cluster.trace cluster in
  Alcotest.(check bool) "restore happened" true
    (Simkit.Trace.counter trace "cluster_sync_restores" >= 1);
  Alcotest.(check bool) "recovery time recorded" true
    (match Simkit.Trace.summary trace "cluster_recovery_ms" with
    | Some s -> s.count = 1
    | None -> false);
  Nearby.Cluster.check_invariants cluster

let test_joins_under_loss_always_terminate () =
  (* The silent-stall regression (20% loss): every join must invoke exactly
     one of on_complete / on_failure — no hanging joins — and retries must
     carry the large majority through. *)
  let rng = Prelude.Prng.create 77 in
  let fx = fixture ~rng ~loss_prob:0.2 ~seed:26 () in
  let cluster = make_cluster fx in
  let rpc = Simkit.Rpc.create ~config:rpc_config ~rng:(Prelude.Prng.split rng) fx.transport in
  let protocol = Nearby.Protocol.create_resilient ~rpc cluster in
  let peers = 30 in
  let replies, failed = run_joins fx protocol ~peers ~k:4 ~horizon:120_000.0 in
  let completed = Hashtbl.length replies in
  Alcotest.(check int) "every join terminated" peers (completed + failed);
  Alcotest.(check int) "rpc outcomes account for every join" peers
    (Simkit.Trace.counter (Simkit.Rpc.trace rpc) "rpc_ok"
    + Simkit.Trace.counter (Simkit.Rpc.trace rpc) "rpc_gave_up");
  Alcotest.(check bool)
    (Printf.sprintf "retries carry most joins through (%d/%d)" completed peers)
    true
    (completed >= peers * 8 / 10);
  Nearby.Cluster.check_invariants cluster

let test_single_cluster_guards () =
  let fx = fixture ~seed:27 () in
  let server = make_server fx () in
  let cluster = Nearby.Cluster.single ~router:fx.replica_routers.(0) server in
  Alcotest.(check int) "one replica" 1 (Nearby.Cluster.replica_count cluster);
  Alcotest.check_raises "no transport to target"
    (Invalid_argument "Cluster.target: single-server cluster has no transport") (fun () ->
      ignore (Nearby.Cluster.target cluster ~src:fx.map.core.(0) ~attempt:1));
  Alcotest.check_raises "no engine to sync on"
    (Invalid_argument "Cluster.start_sync: single-server cluster has no engine") (fun () ->
      Nearby.Cluster.start_sync cluster ~period_ms:100.0 ~until:1_000.0)

(* --- Batched join ------------------------------------------------------ *)

(* [join_many] semantics: every peer is registered before any query is
   answered, so the reference is a plain server with all peers joined
   first, then queried. *)
let batch_reference fx ~peers ~k =
  let reference = make_server fx () in
  for peer = 0 to peers - 1 do
    ignore
      (Nearby.Server.join reference ~peer
         ~attach_router:fx.map.leaves.(peer mod Array.length fx.map.leaves))
  done;
  List.init peers (fun peer -> Nearby.Server.neighbors reference ~peer ~k)

let batch_entries fx ~peers =
  Array.init peers (fun peer -> (peer, fx.map.leaves.(peer mod Array.length fx.map.leaves)))

let run_join_many fx protocol ~peers ~k ~horizon =
  let replies = Hashtbl.create peers in
  let failed = ref 0 in
  Nearby.Protocol.join_many protocol ~entries:(batch_entries fx ~peers) ~k
    ~on_complete:(fun peer _info reply -> Hashtbl.replace replies peer reply)
    ~on_failure:(fun () -> incr failed);
  Simkit.Engine.run fx.engine ~until:horizon;
  (replies, !failed)

let check_batch_replies ~expected replies =
  List.iteri
    (fun peer expect ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "peer %d batch reply" peer)
        expect (Hashtbl.find replies peer))
    expected

let test_join_many_direct_matches_bulk_server () =
  let fx = fixture ~replicas:1 ~seed:31 () in
  let peers = 12 and k = 4 in
  let expected = batch_reference fx ~peers ~k in
  let protocol =
    Nearby.Protocol.create ~engine:fx.engine ~server_router:fx.replica_routers.(0)
      (make_server fx ())
  in
  let replies, failed = run_join_many fx protocol ~peers ~k ~horizon:60_000.0 in
  Alcotest.(check int) "no failures" 0 failed;
  Alcotest.(check int) "all completed" peers (Hashtbl.length replies);
  check_batch_replies ~expected replies

let test_join_many_resilient_replicates_as_one_message () =
  let fx = fixture ~seed:32 () in
  let peers = 12 and k = 4 in
  let expected = batch_reference fx ~peers ~k in
  let cluster = make_cluster fx in
  let rpc = Simkit.Rpc.create ~config:rpc_config fx.transport in
  let protocol = Nearby.Protocol.create_resilient ~rpc cluster in
  let replies, failed = run_join_many fx protocol ~peers ~k ~horizon:60_000.0 in
  Alcotest.(check int) "no failures" 0 failed;
  Alcotest.(check int) "all completed" peers (Hashtbl.length replies);
  check_batch_replies ~expected replies;
  (* The batching headline: ONE replication send per peer replica, not one
     per (entry, replica) — while the apply counter still accounts every
     entry on every replica. *)
  let c name = Simkit.Trace.counter (Nearby.Cluster.trace cluster) name in
  let others = Array.length fx.replica_routers - 1 in
  Alcotest.(check int) "register counter" peers (c "cluster_register");
  Alcotest.(check int) "one send per replica" others (c "cluster_replicate_send");
  Alcotest.(check int) "applies per entry" (peers * others) (c "cluster_replicate_apply");
  Alcotest.(check bool) "replicas consistent" true (Nearby.Cluster.consistent cluster);
  Nearby.Cluster.check_invariants cluster

let suite =
  ( "cluster",
    [
      Alcotest.test_case "direct path = plain server" `Quick test_direct_path_matches_plain_server;
      Alcotest.test_case "resilient 1-replica = direct" `Quick
        test_resilient_single_replica_loss_free_matches_direct;
      Alcotest.test_case "fan-out replicates to all" `Quick test_fan_out_replicates_to_all;
      Alcotest.test_case "crash primary fails over" `Quick test_crash_primary_fails_over;
      Alcotest.test_case "anti-entropy heals stale replica" `Quick
        test_anti_entropy_heals_stale_replica;
      Alcotest.test_case "joins under 20% loss terminate" `Quick
        test_joins_under_loss_always_terminate;
      Alcotest.test_case "single-cluster guards" `Quick test_single_cluster_guards;
      Alcotest.test_case "join_many direct = bulk server" `Quick
        test_join_many_direct_matches_bulk_server;
      Alcotest.test_case "join_many replicates batch as one message" `Quick
        test_join_many_resilient_replicates_as_one_message;
    ] )
