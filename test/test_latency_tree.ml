(* Latency_tree (the float-cost instance of the path-tree functor) and its
   agreement with the hop tree under unit latencies. *)

open Nearby

let lmk = 50

let unit_hops routers = Array.mapi (fun i r -> (r, float_of_int i)) routers

let test_basic () =
  let t = Latency_tree.create ~landmark:lmk in
  Latency_tree.insert t ~peer:0 ~hops:[| (1, 0.0); (2, 3.5); (lmk, 5.0) |];
  Latency_tree.insert t ~peer:1 ~hops:[| (3, 0.0); (2, 2.0); (lmk, 3.5) |];
  (match Latency_tree.meeting_point t 0 1 with
  | Some (router, c1, c2) ->
      Alcotest.(check int) "meets at router 2" 2 router;
      Alcotest.(check (float 1e-9)) "cost 1" 3.5 c1;
      Alcotest.(check (float 1e-9)) "cost 2" 2.0 c2
  | None -> Alcotest.fail "no meeting point");
  Alcotest.(check (option (float 1e-9))) "dtree" (Some 5.5) (Latency_tree.dtree t 0 1);
  Latency_tree.check_invariants t

let test_insert_validation () =
  let t = Latency_tree.create ~landmark:lmk in
  Alcotest.check_raises "decreasing costs"
    (Invalid_argument "Path_tree.insert: costs must be non-decreasing") (fun () ->
      Latency_tree.insert t ~peer:0 ~hops:[| (1, 5.0); (lmk, 2.0) |])

let test_query () =
  let t = Latency_tree.create ~landmark:lmk in
  (* Two peers meeting the query path at the same router but at different
     latencies: the latency tree must prefer the lower-latency one even if
     the hop counts would say otherwise. *)
  Latency_tree.insert t ~peer:0 ~hops:[| (10, 0.0); (2, 20.0); (lmk, 25.0) |];
  Latency_tree.insert t ~peer:1 ~hops:[| (11, 0.0); (12, 1.0); (13, 2.0); (2, 3.0); (lmk, 8.0) |];
  let query_hops = [| (20, 0.0); (2, 4.0); (lmk, 9.0) |] in
  (* dtree(query, 0) = 4 + 20 = 24; dtree(query, 1) = 4 + 3 = 7: peer 1 wins
     despite its longer (4-hop) path. *)
  Alcotest.(check (list (pair int (float 1e-9)))) "latency order" [ (1, 7.0); (0, 24.0) ]
    (Latency_tree.query t ~hops:query_hops ~k:2 ())

let test_hops_of_route () =
  let d = Eval.Paper_drawing.build () in
  let latency = Topology.Latency.assign d.graph Topology.Latency.Hop_count ~seed:1 in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let route = Traceroute.Route_oracle.route oracle ~src:d.p1 ~dst:d.lmk in
  let hops = Latency_tree.hops_of_route ~latency route in
  Alcotest.(check int) "same length" (List.length route) (Array.length hops);
  (* Under Hop_count latency, cumulative cost = position. *)
  Array.iteri
    (fun i (r, c) ->
      Alcotest.(check int) "router order" (List.nth route i) r;
      Alcotest.(check (float 1e-9)) "cumulative" (float_of_int i) c)
    hops

let test_agrees_with_hop_tree_under_unit_latency () =
  (* On the drawing with 1 ms links, latency dtree = hop dtree. *)
  let d = Eval.Paper_drawing.build () in
  let latency = Topology.Latency.assign d.graph Topology.Latency.Hop_count ~seed:1 in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let hop_tree = Path_tree.create ~landmark:d.lmk in
  let lat_tree = Latency_tree.create ~landmark:d.lmk in
  Array.iteri
    (fun peer attach ->
      let route = Traceroute.Route_oracle.route oracle ~src:attach ~dst:d.lmk in
      Path_tree.insert hop_tree ~peer ~routers:(Array.of_list route);
      Latency_tree.insert lat_tree ~peer ~hops:(Latency_tree.hops_of_route ~latency route))
    (Eval.Paper_drawing.peer_attach_routers d);
  for p1 = 0 to 3 do
    for p2 = 0 to 3 do
      let hop = Option.map float_of_int (Path_tree.dtree hop_tree p1 p2) in
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "dtree %d %d" p1 p2)
        hop (Latency_tree.dtree lat_tree p1 p2)
    done;
    Alcotest.(check (list int)) "query order agrees"
      (List.map fst (Path_tree.query_member hop_tree ~peer:p1 ~k:3))
      (List.map fst (Latency_tree.query_member lat_tree ~peer:p1 ~k:3))
  done

let test_remove_and_members () =
  let t = Latency_tree.create ~landmark:lmk in
  Latency_tree.insert t ~peer:7 ~hops:[| (1, 0.0); (lmk, 4.0) |];
  Alcotest.(check bool) "mem" true (Latency_tree.mem t 7);
  Alcotest.(check int) "routers" 2 (Latency_tree.router_count t);
  Latency_tree.remove t 7;
  Alcotest.(check int) "members" 0 (Latency_tree.member_count t);
  Alcotest.(check int) "buckets reclaimed" 0 (Latency_tree.router_count t)

let test_metric_ablation_smoke () =
  let rows =
    Eval.Metric_ablation.run
      { Eval.Metric_ablation.routers = 300; peers = 60; landmark_count = 4; k = 3; seeds = [ 1 ] }
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let find m = List.find (fun (r : Eval.Metric_ablation.row) -> r.metric = m) rows in
  let hops = find "hops" and lat = find "latency" in
  (* Each metric must win (or tie) under its own ground truth. *)
  Alcotest.(check bool) "hop tree best in hops" true (hops.ratio_hops <= lat.ratio_hops +. 1e-9);
  Alcotest.(check bool) "latency tree best in latency" true
    (lat.ratio_latency <= hops.ratio_latency +. 1e-9);
  List.iter
    (fun (r : Eval.Metric_ablation.row) ->
      Alcotest.(check bool) "ratios >= 1" true (r.ratio_hops >= 1.0 && r.ratio_latency >= 1.0))
    rows

(* Exercise the functor with a third, non-numeric cost: lexicographic
   (latency, hops) pairs - minimizing latency with hop count as the
   tie-break.  This is what a deployment that records both would use. *)
module Pair_cost = struct
  type t = float * int

  let zero = (0.0, 0)
  let add (a, b) (c, d) = (a +. c, b + d)
  let compare = compare
end

module Pair_tree = Nearby.Path_tree_core.Make (Pair_cost)

let test_custom_cost_instance () =
  let t = Pair_tree.create ~landmark:9 in
  (* Peer 0: fast but long route; peer 1: slow but short.  A query meeting
     both at router 5 must prefer the lower-latency peer 0, despite more
     hops. *)
  Pair_tree.insert t ~peer:0 ~hops:[| (10, (0.0, 0)); (11, (1.0, 1)); (5, (2.0, 2)); (9, (9.0, 3)) |];
  Pair_tree.insert t ~peer:1 ~hops:[| (20, (0.0, 0)); (5, (8.0, 1)); (9, (15.0, 2)) |];
  Pair_tree.check_invariants t;
  (match Pair_tree.meeting_point t 0 1 with
  | Some (router, c0, c1) ->
      Alcotest.(check int) "meet at 5" 5 router;
      Alcotest.(check bool) "costs carried" true (c0 = (2.0, 2) && c1 = (8.0, 1))
  | None -> Alcotest.fail "no meeting point");
  let query_hops = [| (30, (0.0, 0)); (5, (1.0, 1)); (9, (8.0, 2)) |] in
  match Pair_tree.query t ~hops:query_hops ~k:2 () with
  | [ (first, (lat1, _)); (second, (lat2, _)) ] ->
      Alcotest.(check int) "low latency wins" 0 first;
      Alcotest.(check int) "slow peer second" 1 second;
      Alcotest.(check bool) "latencies ordered" true (lat1 <= lat2)
  | other -> Alcotest.fail (Printf.sprintf "unexpected reply of %d" (List.length other))

let suite =
  ( "latency_tree",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "insert validation" `Quick test_insert_validation;
      Alcotest.test_case "query by latency" `Quick test_query;
      Alcotest.test_case "hops_of_route" `Quick test_hops_of_route;
      Alcotest.test_case "agrees with hop tree" `Quick test_agrees_with_hop_tree_under_unit_latency;
      Alcotest.test_case "remove" `Quick test_remove_and_members;
      Alcotest.test_case "metric ablation" `Slow test_metric_ablation_smoke;
      Alcotest.test_case "custom cost functor instance" `Quick test_custom_cost_instance;
    ] )
