(* Topology.Io: edge-list persistence and dot export. *)

open Topology

let with_temp_file f =
  let path = Filename.temp_file "test_io" ".edges" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let small () = Graph.of_edges ~node_count:5 [ (0, 1); (1, 2); (2, 3); (1, 4) ]

let test_roundtrip_exact () =
  with_temp_file (fun path ->
      let g = small () in
      Io.save_edge_list g path;
      let g' = Io.load_edge_list ~compact:false path in
      Alcotest.(check (list (pair int int))) "edges identical" (Graph.edges g) (Graph.edges g');
      Alcotest.(check int) "node count" (Graph.node_count g) (Graph.node_count g'))

let test_roundtrip_generated () =
  with_temp_file (fun path ->
      let map = Gen_magoni.generate (Gen_magoni.default_params 300) ~seed:4 in
      Io.save_edge_list map.graph path;
      let g' = Io.load_edge_list ~compact:false path in
      Alcotest.(check bool) "identical" true (Graph.edges map.graph = Graph.edges g'))

let read_string ?compact s =
  let path = Filename.temp_file "test_io_str" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Io.load_edge_list ?compact path)

let test_parse_comments_and_blanks () =
  let g = read_string "# a comment\n\n0 1\n  1 2  \n\t2\t3\n" in
  Alcotest.(check int) "edges" 3 (Graph.edge_count g);
  Alcotest.(check int) "nodes" 4 (Graph.node_count g)

let test_compact_renumbering () =
  (* Sparse ids 100, 200, 50 must become dense 0..2 in appearance order. *)
  let g = read_string ~compact:true "100 200\n200 50\n" in
  Alcotest.(check int) "dense nodes" 3 (Graph.node_count g);
  Alcotest.(check (list (pair int int))) "renumbered" [ (0, 1); (1, 2) ] (Graph.edges g)

let test_non_compact_isolates () =
  let g = read_string ~compact:false "0 3\n" in
  Alcotest.(check int) "max id + 1 nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "isolated node degree" 0 (Graph.degree g 1)

let test_malformed () =
  Alcotest.check_raises "three fields" (Failure "Io.read_edge_list: expected 'u v' on line 1")
    (fun () -> ignore (read_string "0 1 2\n"));
  Alcotest.check_raises "not a number" (Failure "Io.read_edge_list: bad ids on line 2") (fun () ->
      ignore (read_string "0 1\nx y\n"));
  Alcotest.check_raises "negative id" (Failure "Io.read_edge_list: bad ids on line 1") (fun () ->
      ignore (read_string "-1 2\n"))

let test_duplicate_rejected () =
  Alcotest.check_raises "duplicate edge" (Invalid_argument "Graph.of_edges: duplicate edge")
    (fun () -> ignore (read_string "0 1\n1 0\n"))

let test_to_dot () =
  let dot = Io.to_dot ~highlight:[ 1 ] (small ()) in
  Alcotest.(check bool) "has graph header" true (String.length dot > 0);
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec scan i = i + n <= h && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "edge present" true (contains "0 -- 1;");
  Alcotest.(check bool) "highlight present" true (contains "1 [style=filled");
  Alcotest.(check bool) "closing brace" true (contains "}")

let suite =
  ( "io",
    [
      Alcotest.test_case "roundtrip exact" `Quick test_roundtrip_exact;
      Alcotest.test_case "roundtrip generated map" `Quick test_roundtrip_generated;
      Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
      Alcotest.test_case "compact renumbering" `Quick test_compact_renumbering;
      Alcotest.test_case "non-compact isolates" `Quick test_non_compact_isolates;
      Alcotest.test_case "malformed input" `Quick test_malformed;
      Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
      Alcotest.test_case "dot export" `Quick test_to_dot;
    ] )
