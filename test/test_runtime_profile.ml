(* Runtime self-profiling: GC deltas per phase, domain-pool busy/idle
   accounting, and the profiler's own observe-path overhead. *)

open Simkit

let find_exn p name =
  match Runtime_profile.find p name with
  | Some ph -> ph
  | None -> Alcotest.failf "phase %s not recorded" name

(* Allocate enough to show up in the minor-heap counters whatever the
   runtime's minor heap size: a few million words of short-lived boxes. *)
let allocation_burst () =
  let acc = ref [] in
  for i = 0 to 200_000 do
    acc := (float_of_int i, i) :: !acc;
    if i mod 10_000 = 0 then acc := []
  done;
  ignore (Sys.opaque_identity !acc)

let test_gc_deltas_nonzero_and_monotone () =
  let p = Runtime_profile.create () in
  Runtime_profile.phase p "burst" allocation_burst;
  let first = find_exn p "burst" in
  Alcotest.(check int) "one run" 1 first.runs;
  Alcotest.(check bool) "wall time advanced" true (first.wall_ns >= 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "minor words counted (%.0f)" first.gc.minor_words)
    true
    (first.gc.minor_words > 0.0);
  (* Re-entering the phase accumulates: counters are monotone in runs. *)
  Runtime_profile.phase p "burst" allocation_burst;
  let second = find_exn p "burst" in
  Alcotest.(check int) "two runs" 2 second.runs;
  Alcotest.(check bool) "minor words monotone" true
    (second.gc.minor_words > first.gc.minor_words);
  Alcotest.(check bool) "wall monotone" true (second.wall_ns >= first.wall_ns);
  Alcotest.(check bool) "collections monotone" true
    (second.gc.minor_collections >= first.gc.minor_collections)

let test_phase_passes_result_and_exceptions () =
  let p = Runtime_profile.create () in
  Alcotest.(check int) "result passed through" 7
    (Runtime_profile.phase p "calc" (fun () -> 7));
  (match Runtime_profile.phase p "boom" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  (* The failed run is still recorded: a crashing phase must not vanish
     from the profile. *)
  Alcotest.(check int) "failed run recorded" 1 (find_exn p "boom").runs;
  Alcotest.(check bool) "overhead accumulates" true (Runtime_profile.overhead_ns p >= 0.0)

let test_phase_order_and_find () =
  let p = Runtime_profile.create () in
  Runtime_profile.phase p "a" Fun.id;
  Runtime_profile.phase p "b" Fun.id;
  Runtime_profile.phase p "a" Fun.id;
  Alcotest.(check (list string)) "first-entered order" [ "a"; "b" ]
    (List.map (fun (ph : Runtime_profile.phase) -> ph.name) (Runtime_profile.phases p));
  Alcotest.(check bool) "find missing" true (Runtime_profile.find p "zzz" = None)

let test_to_json_shape () =
  let p = Runtime_profile.create () in
  Runtime_profile.phase p "build" allocation_burst;
  let json = Runtime_profile.to_json p in
  let has sub =
    let n = String.length json and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub json i m = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "phases key" true (has "\"phases\"");
  Alcotest.(check bool) "build phase" true (has "\"build\"");
  Alcotest.(check bool) "gc delta" true (has "\"minor_words\"");
  Alcotest.(check bool) "overhead" true (has "\"overhead_ns\"")

(* --- Domain-pool utilization accounting --- *)

let test_pool_zero_tasks_pure_idle () =
  let pool = Prelude.Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Prelude.Domain_pool.shutdown pool)
    (fun () ->
      let u = Prelude.Domain_pool.utilization pool in
      Alcotest.(check int) "no jobs" 0 u.jobs;
      Alcotest.(check int) "no tasks" 0 u.tasks;
      Alcotest.(check (float 1e-9)) "no busy time" 0.0 u.busy_ns;
      Alcotest.(check bool) "idle accounts for all worker time" true
        (Float.abs (u.idle_ns -. (float_of_int u.domains *. u.wall_ns)) <= 1e-3))

let busy_spin () =
  let x = ref 0.0 in
  for i = 1 to 200_000 do
    x := !x +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !x)

let check_accounting (u : Prelude.Domain_pool.utilization) =
  Alcotest.(check bool) "busy time measured" true (u.busy_ns > 0.0);
  Alcotest.(check bool) "busy bounded by capacity" true
    (u.busy_ns <= float_of_int u.domains *. u.wall_ns +. 1e-3);
  (* busy + idle == domains * wall by construction (idle clamped at 0). *)
  Alcotest.(check bool) "busy+idle accounts for all worker time" true
    (Float.abs (u.busy_ns +. u.idle_ns -. (float_of_int u.domains *. u.wall_ns)) <= 1e-3
    || (u.idle_ns = 0.0 && u.busy_ns >= float_of_int u.domains *. u.wall_ns -. 1e-3))

let test_pool_busy_accounting_parallel () =
  let pool = Prelude.Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Prelude.Domain_pool.shutdown pool)
    (fun () ->
      Prelude.Domain_pool.run pool 8 (fun _ -> busy_spin ());
      let u = Prelude.Domain_pool.utilization pool in
      Alcotest.(check int) "one job" 1 u.jobs;
      Alcotest.(check int) "eight tasks" 8 u.tasks;
      check_accounting u;
      Prelude.Domain_pool.reset_utilization pool;
      let r = Prelude.Domain_pool.utilization pool in
      Alcotest.(check int) "reset jobs" 0 r.jobs;
      Alcotest.(check (float 1e-9)) "reset busy" 0.0 r.busy_ns)

let test_pool_busy_accounting_sequential () =
  (* domains = 1 spawns nothing; the sequential fallback path must feed
     the same counters. *)
  let pool = Prelude.Domain_pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Prelude.Domain_pool.shutdown pool)
    (fun () ->
      Prelude.Domain_pool.run pool 4 (fun _ -> busy_spin ());
      let u = Prelude.Domain_pool.utilization pool in
      Alcotest.(check int) "one job" 1 u.jobs;
      Alcotest.(check int) "four tasks" 4 u.tasks;
      check_accounting u)

let test_note_pool () =
  let p = Runtime_profile.create () in
  Alcotest.(check bool) "no pool noted" true (Runtime_profile.pool p = None);
  let pool = Prelude.Domain_pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Prelude.Domain_pool.shutdown pool)
    (fun () ->
      Prelude.Domain_pool.run pool 2 (fun _ -> busy_spin ());
      Runtime_profile.note_pool p pool;
      match Runtime_profile.pool p with
      | None -> Alcotest.fail "pool snapshot missing"
      | Some u -> Alcotest.(check int) "snapshot carries tasks" 2 u.tasks)

let suite =
  ( "runtime_profile",
    [
      Alcotest.test_case "gc deltas nonzero and monotone" `Quick
        test_gc_deltas_nonzero_and_monotone;
      Alcotest.test_case "phase result and exceptions" `Quick
        test_phase_passes_result_and_exceptions;
      Alcotest.test_case "phase order and find" `Quick test_phase_order_and_find;
      Alcotest.test_case "to_json shape" `Quick test_to_json_shape;
      Alcotest.test_case "pool: zero tasks is pure idle" `Quick test_pool_zero_tasks_pure_idle;
      Alcotest.test_case "pool: parallel accounting" `Quick test_pool_busy_accounting_parallel;
      Alcotest.test_case "pool: sequential accounting" `Quick
        test_pool_busy_accounting_sequential;
      Alcotest.test_case "note_pool snapshot" `Quick test_note_pool;
    ] )
