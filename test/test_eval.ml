(* Eval: workload, paper drawing pins, protocol timing, experiment smoke. *)

let test_paper_drawing_pins () =
  let d = Eval.Paper_drawing.build () in
  Alcotest.(check int) "16 nodes" 16 (Topology.Graph.node_count d.graph);
  Alcotest.(check bool) "connected" true (Topology.Graph.is_connected d.graph);
  (* The drawing's core routers have the large degrees. *)
  Alcotest.(check int) "ra degree" 4 (Topology.Graph.degree d.graph d.ra);
  Alcotest.(check int) "rc degree" 4 (Topology.Graph.degree d.graph d.rc);
  Alcotest.(check int) "peers are leaves" 1 (Topology.Graph.degree d.graph d.p1);
  Alcotest.(check string) "names" "rc" (Eval.Paper_drawing.name_of d d.rc);
  (* The exact situation of the figure: dtree(p1,p2) = 6 via rc, d(p1,p2) = 3. *)
  let oracle = Traceroute.Route_oracle.create d.graph in
  let tree = Nearby.Path_tree.create ~landmark:d.lmk in
  Array.iteri
    (fun peer attach ->
      let routers = Array.of_list (Traceroute.Route_oracle.route oracle ~src:attach ~dst:d.lmk) in
      Nearby.Path_tree.insert tree ~peer ~routers)
    (Eval.Paper_drawing.peer_attach_routers d);
  (match Nearby.Path_tree.meeting_point tree 0 1 with
  | Some (router, d1, d2) ->
      Alcotest.(check int) "meeting at rc" d.rc router;
      Alcotest.(check int) "p1 three hops up" 3 d1;
      Alcotest.(check int) "p2 three hops up" 3 d2
  | None -> Alcotest.fail "no meeting point");
  Alcotest.(check int) "true distance shorter" 3 (Topology.Bfs.distance d.graph d.p1 d.p2);
  (* p2 is still ranked first for p1. *)
  match Nearby.Path_tree.query_member tree ~peer:0 ~k:1 with
  | [ (p, 6) ] -> Alcotest.(check int) "p2 first" 1 p
  | other ->
      Alcotest.fail
        (Printf.sprintf "unexpected reply length %d or distance" (List.length other))

let test_workload_build () =
  let w = Eval.Workload.build ~routers:300 ~landmark_count:3 ~peers:50 ~seed:1 () in
  Alcotest.(check int) "peer count" 50 (Eval.Workload.peer_count w);
  Alcotest.(check int) "landmarks" 3 (Array.length w.landmarks);
  (* Paper setup: every peer sits on a degree-1 router. *)
  Array.iter
    (fun r -> Alcotest.(check int) "degree-1 attachment" 1 (Topology.Graph.degree (Eval.Workload.graph w) r))
    w.peer_routers;
  (* Landmarks never sit on leaf routers (medium-degree policy). *)
  Array.iter
    (fun l -> Alcotest.(check bool) "landmark degree >= 2" true (Topology.Graph.degree (Eval.Workload.graph w) l >= 2))
    w.landmarks

let test_workload_deterministic () =
  let a = Eval.Workload.build ~routers:300 ~peers:20 ~seed:5 () in
  let b = Eval.Workload.build ~routers:300 ~peers:20 ~seed:5 () in
  Alcotest.(check (array int)) "same peers" a.peer_routers b.peer_routers;
  Alcotest.(check (array int)) "same landmarks" a.landmarks b.landmarks;
  let c = Eval.Workload.build ~routers:300 ~peers:20 ~seed:6 () in
  Alcotest.(check bool) "seed changes placement" true
    (a.peer_routers <> c.peer_routers || a.landmarks <> c.landmarks)

let test_protocol_timing () =
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  let server = Nearby.Server.create oracle ~landmarks:[| d.lmk |] in
  let engine = Simkit.Engine.create () in
  let protocol = Nearby.Protocol.create ~engine ~server_router:d.lmk server in
  (* p1: round 1 = RTT to the single landmark (10 ms at 1 ms/hop over 5
     hops); traceroute = sum of prefix RTTs 2+4+6+8+10 = 30; RPC = 10. *)
  Alcotest.(check (float 1e-9)) "join delay decomposition" 50.0
    (Nearby.Protocol.estimate_join_delay protocol ~attach_router:d.p1);
  let completed = ref None in
  Nearby.Protocol.join protocol ~peer:0 ~attach_router:d.p1 ~k:2 ~on_complete:(fun info reply ->
      completed := Some (info, reply, Simkit.Engine.now engine));
  Alcotest.(check bool) "not yet" true (!completed = None);
  Simkit.Engine.run engine;
  (match !completed with
  | Some (info, reply, at) ->
      Alcotest.(check (float 1e-9)) "completed at the estimated time" 50.0 at;
      Alcotest.(check int) "registered under lmk" d.lmk info.landmark;
      Alcotest.(check (list (pair int int))) "no peers yet" [] reply
  | None -> Alcotest.fail "join never completed");
  Alcotest.(check int) "server has the peer" 1 (Nearby.Server.peer_count server)

let test_vivaldi_setup_delay () =
  Alcotest.(check (float 1e-9)) "rounds x period" 2500.0
    (Nearby.Protocol.vivaldi_setup_delay ~rounds:10 ~round_period_ms:250.0);
  Alcotest.check_raises "negative" (Invalid_argument "Protocol.vivaldi_setup_delay: negative input")
    (fun () -> ignore (Nearby.Protocol.vivaldi_setup_delay ~rounds:(-1) ~round_period_ms:1.0))

let tiny_fig2 = { Eval.Fig2.routers = 300; landmark_count = 4; k = 3; peer_counts = [ 40; 80 ]; seeds = [ 1 ] }

let test_fig2_shape () =
  let rows = Eval.Fig2.run tiny_fig2 in
  Alcotest.(check int) "one row per population" 2 (List.length rows);
  List.iter
    (fun (r : Eval.Fig2.row) ->
      Alcotest.(check bool) "ratios at least 1" true (r.ratio_proposed >= 1.0 && r.ratio_random >= 1.0);
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: proposed %.3f < random %.3f" r.n r.ratio_proposed r.ratio_random)
        true
        (r.ratio_proposed < r.ratio_random);
      Alcotest.(check bool) "hit ratio sane" true (r.hit_proposed >= 0.0 && r.hit_proposed <= 1.0))
    rows

let test_fig2_print_smoke () =
  (* print must not raise and must mention both series. *)
  let rows = Eval.Fig2.run { tiny_fig2 with peer_counts = [ 30 ] } in
  Eval.Fig2.print rows

let test_complexity_rows () =
  let rows = Eval.Complexity.run { Eval.Complexity.quick_config with routers = 300; populations = [ 200; 800 ]; queries_per_size = 100 } in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Eval.Complexity.row) ->
      Alcotest.(check bool) "positive timings" true (r.insert_us >= 0.0 && r.query_us >= 0.0))
    rows

let test_landmark_sweep_smoke () =
  let config =
    {
      Eval.Landmark_sweep.routers = 300;
      peers = 40;
      k = 3;
      counts = [ 1; 4 ];
      policies = [ Nearby.Landmark.Medium_degree ];
      seeds = [ 1 ];
    }
  in
  let rows = Eval.Landmark_sweep.run config in
  Alcotest.(check int) "rows" 2 (List.length rows);
  List.iter
    (fun (r : Eval.Landmark_sweep.row) ->
      Alcotest.(check bool) "ratio >= 1" true (r.ratio >= 1.0))
    rows;
  let ablation = Eval.Landmark_sweep.run_round1_ablation config in
  Alcotest.(check int) "ablation rows" 2 (List.length ablation);
  (* With a single landmark, closest and random choice coincide. *)
  match ablation with
  | first :: _ ->
      Alcotest.(check (float 1e-6)) "1 landmark: choice irrelevant" first.ratio_closest
        first.ratio_random_lmk
  | [] -> Alcotest.fail "no ablation rows"

let test_truncate_exp_smoke () =
  let config =
    {
      Eval.Truncate_exp.routers = 300;
      peers = 40;
      landmark_count = 4;
      k = 3;
      strategies = Traceroute.Truncate.[ Full; Last_k 3 ];
      seeds = [ 1 ];
    }
  in
  let rows = Eval.Truncate_exp.run config in
  Alcotest.(check int) "rows" 2 (List.length rows);
  match rows with
  | [ full; last ] ->
      Alcotest.(check bool) "full quality at least as good" true (full.ratio <= last.ratio +. 0.3);
      Alcotest.(check bool) "truncated tool is cheaper" true
        (last.mean_probes_per_join < full.mean_probes_per_join)
  | _ -> Alcotest.fail "expected two rows"

let test_super_peer_exp_smoke () =
  let rows =
    Eval.Super_peer_exp.run
      { Eval.Super_peer_exp.routers = 300; peers = 40; landmark_count = 4; k = 3; seeds = [ 1 ] }
  in
  match rows with
  | [ r ] ->
      Alcotest.(check bool) "ratios >= 1" true (r.ratio_central >= 1.0 && r.ratio_super >= 1.0);
      Alcotest.(check bool) "imbalance >= 1" true (r.load_imbalance >= 1.0);
      Alcotest.(check bool) "regions partition peers" true
        (r.max_region_members >= r.min_region_members)
  | _ -> Alcotest.fail "expected one row"

let test_churn_exp_smoke () =
  let config =
    {
      Eval.Churn_exp.quick_config with
      routers = 300;
      spec =
        {
          Simkit.Churn.arrival_rate_per_s = 1.0;
          session = Simkit.Churn.Exponential { mean_ms = 60_000.0 };
          failure_fraction = 0.2;
          mobility_fraction = 0.1;
          horizon_ms = 120_000.0;
        };
      checkpoints = 2;
      seed = 2;
    }
  in
  let checkpoints = Eval.Churn_exp.run config in
  Alcotest.(check int) "checkpoints" 2 (List.length checkpoints);
  List.iter
    (fun (c : Eval.Churn_exp.checkpoint) ->
      Alcotest.(check bool) "live peers non-negative" true (c.live_peers >= 0);
      Alcotest.(check bool) "stale fraction in [0,1]" true
        (c.stale_fraction >= 0.0 && c.stale_fraction <= 1.0);
      if not (Float.is_nan c.ratio) then Alcotest.(check bool) "ratio >= 1" true (c.ratio >= 0.99))
    checkpoints

let test_stretch_analysis_smoke () =
  let rows =
    Eval.Stretch_analysis.run
      { Eval.Stretch_analysis.routers = 400; landmark_counts = [ 1; 4 ]; pairs = 300; seed = 1 }
  in
  Alcotest.(check int) "rows" 2 (List.length rows);
  (match rows with
  | single :: multi :: _ ->
      Alcotest.(check (float 1e-9)) "one landmark: every pair shares it" 1.0
        single.same_landmark_fraction;
      Alcotest.(check bool) "more landmarks, fewer shared" true
        (multi.same_landmark_fraction < single.same_landmark_fraction)
  | _ -> Alcotest.fail "expected two rows");
  List.iter
    (fun (r : Eval.Stretch_analysis.row) ->
      Alcotest.(check bool) "stretch >= 1" true (r.mean_stretch >= 1.0 -. 1e-9);
      Alcotest.(check bool) "exact fraction in [0,1]" true
        (r.exact_fraction >= 0.0 && r.exact_fraction <= 1.0);
      Alcotest.(check bool) "p95 >= mean is typical" true
        (Float.is_nan r.p95_stretch || r.p95_stretch >= 1.0))
    rows

let test_complexity_naive_column () =
  let rows =
    Eval.Complexity.run
      { Eval.Complexity.quick_config with routers = 300; populations = [ 200; 1600 ]; queries_per_size = 200 }
  in
  match rows with
  | [ small; large ] ->
      (* The exhaustive scan must degrade much faster than the path tree:
         8x the population should cost clearly more per naive query. *)
      Alcotest.(check bool)
        (Printf.sprintf "naive scales badly (%.1f -> %.1f us)" small.naive_query_us large.naive_query_us)
        true
        (large.naive_query_us > 2.0 *. small.naive_query_us)
  | _ -> Alcotest.fail "expected two rows"

let test_churn_heartbeat_mode () =
  (* Regression: heartbeat loops must not keep the engine alive past the
     horizon (the run is bounded), and detection must actually deregister
     crashed peers. *)
  let config =
    {
      Eval.Churn_exp.quick_config with
      routers = 300;
      spec =
        {
          Simkit.Churn.arrival_rate_per_s = 1.0;
          session = Simkit.Churn.Exponential { mean_ms = 40_000.0 };
          failure_fraction = 0.4;
          mobility_fraction = 0.1;
          horizon_ms = 120_000.0;
        };
      detection =
        Eval.Churn_exp.Heartbeat
          {
            Simkit.Failure_detector.heartbeat_period_ms = 2_000.0;
            timeout_ms = 9_000.0;
            heartbeat_bytes = 32;
          };
      checkpoints = 2;
      seed = 4;
    }
  in
  let checkpoints = Eval.Churn_exp.run config in
  Alcotest.(check int) "terminates with both checkpoints" 2 (List.length checkpoints);
  let last = List.nth checkpoints 1 in
  Alcotest.(check bool) "heartbeats flowed" true (last.heartbeat_messages > 0);
  Alcotest.(check bool) "staleness bounded" true (last.stale_fraction < 0.5)

let test_setup_delay_smoke () =
  let rows =
    Eval.Setup_delay.run
      {
        Eval.Setup_delay.routers = 300;
        peers = 30;
        landmark_count = 4;
        k = 3;
        vivaldi_rounds = [ 2 ];
        round_period_ms = 250.0;
        seed = 1;
      }
  in
  Alcotest.(check int) "proposed + gnp + meridian + 1 vivaldi" 4 (List.length rows);
  let find name = List.find (fun (r : Eval.Setup_delay.row) -> r.method_name = name) rows in
  let proposed = find "proposed" and vivaldi = find "vivaldi-2r" in
  let meridian = find "meridian" in
  Alcotest.(check bool) "proposed has a real setup time" true
    (proposed.setup_ms > 0.0 && Float.is_finite proposed.setup_ms);
  Alcotest.(check bool) "meridian has a real setup time" true
    (meridian.setup_ms > 0.0 && Float.is_finite meridian.setup_ms);
  Alcotest.(check (float 1e-9)) "vivaldi setup = rounds x period" 500.0 vivaldi.setup_ms;
  List.iter
    (fun (r : Eval.Setup_delay.row) -> Alcotest.(check bool) "ratio >= 1" true (r.ratio >= 1.0))
    rows

let test_topology_sensitivity_smoke () =
  let rows =
    Eval.Topology_sensitivity.run
      {
        Eval.Topology_sensitivity.nodes = 400;
        peers = 80;
        landmark_count = 4;
        k = 4;
        families = [ Eval.Topology_sensitivity.Magoni; Eval.Topology_sensitivity.Er ];
        seeds = [ 1 ];
      }
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let find f = List.find (fun (r : Eval.Topology_sensitivity.row) -> r.family = f) rows in
  let magoni = find Eval.Topology_sensitivity.Magoni and er = find Eval.Topology_sensitivity.Er in
  Alcotest.(check bool) "magoni is heavier tailed" true (magoni.gini > er.gini);
  List.iter
    (fun (r : Eval.Topology_sensitivity.row) ->
      Alcotest.(check bool) "ratios >= 1" true (r.ratio_proposed >= 1.0 && r.ratio_random >= 1.0);
      Alcotest.(check bool) "proposed no worse than random" true
        (r.ratio_proposed <= r.ratio_random +. 0.2))
    rows

let suite =
  ( "eval",
    [
      Alcotest.test_case "paper drawing pins" `Quick test_paper_drawing_pins;
      Alcotest.test_case "workload build" `Quick test_workload_build;
      Alcotest.test_case "workload deterministic" `Quick test_workload_deterministic;
      Alcotest.test_case "protocol timing" `Quick test_protocol_timing;
      Alcotest.test_case "vivaldi setup delay" `Quick test_vivaldi_setup_delay;
      Alcotest.test_case "fig2 shape" `Slow test_fig2_shape;
      Alcotest.test_case "fig2 print" `Slow test_fig2_print_smoke;
      Alcotest.test_case "complexity rows" `Slow test_complexity_rows;
      Alcotest.test_case "landmark sweep" `Slow test_landmark_sweep_smoke;
      Alcotest.test_case "truncate experiment" `Slow test_truncate_exp_smoke;
      Alcotest.test_case "super-peer experiment" `Slow test_super_peer_exp_smoke;
      Alcotest.test_case "churn experiment" `Slow test_churn_exp_smoke;
      Alcotest.test_case "churn heartbeat mode" `Slow test_churn_heartbeat_mode;
      Alcotest.test_case "setup-delay experiment" `Slow test_setup_delay_smoke;
      Alcotest.test_case "stretch analysis" `Slow test_stretch_analysis_smoke;
      Alcotest.test_case "complexity naive column" `Slow test_complexity_naive_column;
      Alcotest.test_case "topology sensitivity" `Slow test_topology_sensitivity_smoke;
    ] )
