(* Topology generators: structure, determinism, and the statistical
   regularities the paper's mechanism relies on. *)

open Topology

let test_er_counts () =
  let g = Gen_er.generate ~nodes:200 ~edges:400 ~seed:1 in
  Alcotest.(check int) "nodes" 200 (Graph.node_count g);
  Alcotest.(check int) "edges" 400 (Graph.edge_count g)

let test_er_bounds () =
  Alcotest.check_raises "too many edges" (Invalid_argument "Gen_er.generate: edge count out of range")
    (fun () -> ignore (Gen_er.generate ~nodes:3 ~edges:4 ~seed:1));
  let complete = Gen_er.generate ~nodes:4 ~edges:6 ~seed:1 in
  Alcotest.(check int) "complete graph" 6 (Graph.edge_count complete)

let test_er_connected () =
  let g = Gen_er.generate_connected ~nodes:300 ~edges:400 ~seed:2 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "edges" 400 (Graph.edge_count g);
  let tree = Gen_er.generate_connected ~nodes:50 ~edges:49 ~seed:3 in
  Alcotest.(check bool) "spanning tree" true (Graph.is_connected tree)

let test_er_determinism () =
  let a = Gen_er.generate ~nodes:100 ~edges:150 ~seed:7 in
  let b = Gen_er.generate ~nodes:100 ~edges:150 ~seed:7 in
  Alcotest.(check bool) "same edges" true (Graph.edges a = Graph.edges b)

let test_ba_structure () =
  let g = Gen_ba.generate ~nodes:1000 ~edges_per_node:3 ~seed:4 in
  Alcotest.(check int) "nodes" 1000 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Each of the n - m - 1 attachment steps adds m edges on top of the seed
     clique's m(m+1)/2. *)
  Alcotest.(check int) "edges" ((3 * 4 / 2) + (3 * (1000 - 4))) (Graph.edge_count g);
  Alcotest.(check bool) "min degree >= m" true
    (List.for_all (fun v -> Graph.degree g v >= 3) (Graph.nodes_matching g (fun _ _ -> true)))

let test_ba_heavy_tail () =
  let ba = Gen_ba.generate ~nodes:2000 ~edges_per_node:3 ~seed:5 in
  let er = Gen_er.generate_connected ~nodes:2000 ~edges:(Graph.edge_count ba) ~seed:5 in
  Alcotest.(check bool) "BA max degree beats ER" true (Graph.max_degree ba > Graph.max_degree er);
  Alcotest.(check bool) "BA gini beats ER" true (Degree.gini ba > Degree.gini er)

let test_ba_invalid () =
  Alcotest.check_raises "nodes <= m" (Invalid_argument "Gen_ba.generate: need nodes > edges_per_node")
    (fun () -> ignore (Gen_ba.generate ~nodes:3 ~edges_per_node:3 ~seed:1))

let test_glp_structure () =
  let g = Gen_glp.generate ~nodes:800 ~m:2 ~p:0.4 ~beta:0.6 ~seed:6 in
  Alcotest.(check int) "nodes" 800 (Graph.node_count g);
  Alcotest.(check bool) "heavy tailed" true (Degree.gini g > 0.2);
  Alcotest.(check bool) "has a hub" true (Graph.max_degree g > 20)

let test_glp_invalid () =
  Alcotest.check_raises "beta >= 1" (Invalid_argument "Gen_glp.generate: beta must be < 1") (fun () ->
      ignore (Gen_glp.generate ~nodes:10 ~m:1 ~p:0.1 ~beta:1.0 ~seed:1))

let test_waxman_structure () =
  let g, placement = Gen_waxman.generate ~nodes:150 ~alpha:0.3 ~beta:0.25 ~seed:7 in
  Alcotest.(check int) "nodes" 150 (Graph.node_count g);
  Alcotest.(check bool) "connected by stitching" true (Graph.is_connected g);
  Alcotest.(check int) "placement size" 150 (Array.length placement.x);
  Array.iter
    (fun x -> Alcotest.(check bool) "coords in unit square" true (x >= 0.0 && x <= 1.0))
    placement.x

let test_waxman_locality () =
  (* Edges should connect closer-than-average pairs. *)
  let g, p = Gen_waxman.generate ~nodes:120 ~alpha:0.4 ~beta:0.15 ~seed:8 in
  let dist i j = sqrt (((p.x.(i) -. p.x.(j)) ** 2.0) +. ((p.y.(i) -. p.y.(j)) ** 2.0)) in
  let edge_dist = Prelude.Stats.create () in
  List.iter (fun (u, v) -> Prelude.Stats.add edge_dist (dist u v)) (Graph.edges g);
  let all_dist = Prelude.Stats.create () in
  for i = 0 to 119 do
    for j = i + 1 to 119 do
      Prelude.Stats.add all_dist (dist i j)
    done
  done;
  Alcotest.(check bool) "edges are local" true
    (Prelude.Stats.mean edge_dist < Prelude.Stats.mean all_dist)

let test_transit_stub_structure () =
  let p = Gen_transit_stub.default_params in
  let g = Gen_transit_stub.generate p ~seed:9 in
  let expected_nodes =
    let transit = p.transit_domains * p.routers_per_transit in
    transit + (transit * p.stubs_per_transit_router * p.routers_per_stub)
  in
  Alcotest.(check int) "node count" expected_nodes (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_transit_stub_hierarchy () =
  (* Removing a transit router must disconnect its stub routers from the
     other transit domain - checked indirectly: stub-to-stub routes cross the
     transit layer.  We verify the transit nodes carry high betweenness. *)
  let p = { Gen_transit_stub.default_params with intra_edge_prob = 0.3 } in
  let g = Gen_transit_stub.generate p ~seed:10 in
  let b = Centrality.betweenness g in
  let transit_count = p.transit_domains * p.routers_per_transit in
  let mean_transit = ref 0.0 and mean_stub = ref 0.0 in
  let n = Graph.node_count g in
  for v = 0 to transit_count - 1 do
    mean_transit := !mean_transit +. b.(v)
  done;
  for v = transit_count to n - 1 do
    mean_stub := !mean_stub +. b.(v)
  done;
  let mean_transit = !mean_transit /. float_of_int transit_count in
  let mean_stub = !mean_stub /. float_of_int (n - transit_count) in
  Alcotest.(check bool) "transit routers dominate betweenness" true (mean_transit > 2.0 *. mean_stub)

let test_magoni_partition () =
  let map = Gen_magoni.generate (Gen_magoni.default_params 1000) ~seed:11 in
  let n_core = Array.length map.core
  and n_tree = Array.length map.tree
  and n_leaf = Array.length map.leaves in
  Alcotest.(check int) "partition covers everything" 1000 (n_core + n_tree + n_leaf);
  Alcotest.(check bool) "core ~15%" true (abs (n_core - 150) <= 2);
  Alcotest.(check bool) "leaves ~40%" true (abs (n_leaf - 400) <= 2);
  Alcotest.(check bool) "connected" true (Graph.is_connected map.graph);
  (* Every designated leaf really has degree 1 (the paper attaches peers to
     degree-1 routers). *)
  Array.iter
    (fun leaf -> Alcotest.(check int) "leaf degree" 1 (Graph.degree map.graph leaf))
    map.leaves

let test_magoni_core_is_central () =
  let map = Gen_magoni.generate (Gen_magoni.default_params 600) ~seed:12 in
  let rng = Prelude.Prng.create 12 in
  let b = Centrality.betweenness_sampled map.graph ~sources:100 ~rng in
  let mean over =
    Array.fold_left (fun acc v -> acc +. b.(v)) 0.0 over /. float_of_int (Array.length over)
  in
  (* The paper's premise: routes funnel through the heavy-tailed core. *)
  Alcotest.(check bool) "core betweenness >> leaf betweenness" true
    (mean map.core > 10.0 *. mean map.leaves);
  Alcotest.(check bool) "core betweenness > tree betweenness" true (mean map.core > mean map.tree)

let test_magoni_heavy_tail () =
  let map = Gen_magoni.generate (Gen_magoni.default_params 2000) ~seed:13 in
  let alpha = Degree.power_law_alpha map.graph ~x_min:3 in
  Alcotest.(check bool) (Printf.sprintf "alpha = %.2f plausible" alpha) true
    (alpha > 1.8 && alpha < 4.0);
  Alcotest.(check bool) "hub exists" true (Graph.max_degree map.graph > 25)

let test_magoni_determinism () =
  let a = Gen_magoni.generate (Gen_magoni.default_params 500) ~seed:14 in
  let b = Gen_magoni.generate (Gen_magoni.default_params 500) ~seed:14 in
  Alcotest.(check bool) "same graph" true (Graph.edges a.graph = Graph.edges b.graph);
  let c = Gen_magoni.generate (Gen_magoni.default_params 500) ~seed:15 in
  Alcotest.(check bool) "different seed differs" true (Graph.edges a.graph <> Graph.edges c.graph)

let test_magoni_invalid () =
  Alcotest.check_raises "tiny map" (Invalid_argument "Gen_magoni.generate: need at least 20 routers")
    (fun () -> ignore (Gen_magoni.generate { (Gen_magoni.default_params 10) with routers = 10 } ~seed:1))

let test_config_model_degrees_bounded () =
  let degrees = [| 3; 2; 2; 1; 1; 1 |] in
  let g = Gen_config_model.generate ~degrees ~seed:16 in
  Alcotest.(check int) "node count" 6 (Graph.node_count g);
  Array.iteri
    (fun v d ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d realized <= requested" v)
        true
        (Graph.degree g v <= d))
    degrees;
  Alcotest.check_raises "negative degree"
    (Invalid_argument "Gen_config_model.generate: negative degree") (fun () ->
      ignore (Gen_config_model.generate ~degrees:[| -1 |] ~seed:1))

let test_config_model_realizes_most_edges () =
  (* On a long sequence, the erased variant loses only a vanishing fraction
     of stubs. *)
  let rng = Prelude.Prng.create 17 in
  let degrees = Gen_config_model.power_law_degrees ~n:2000 ~alpha:2.2 ~d_min:1 ~d_max:50 ~rng in
  let requested = Array.fold_left ( + ) 0 degrees / 2 in
  let g = Gen_config_model.generate ~degrees ~seed:18 in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d edges realized" (Graph.edge_count g) requested)
    true
    (float_of_int (Graph.edge_count g) > 0.9 *. float_of_int requested)

let test_config_model_power_law_shape () =
  let g, giant = Gen_config_model.generate_power_law ~n:3000 ~alpha:2.2 ~d_min:1 ~d_max:80 ~seed:19 in
  Alcotest.(check bool) "giant component is large" true
    (Graph.node_count giant > Graph.node_count g / 2);
  Alcotest.(check bool) "giant connected" true (Graph.is_connected giant);
  let alpha = Degree.power_law_alpha giant ~x_min:2 in
  Alcotest.(check bool) (Printf.sprintf "alpha = %.2f near 2.2" alpha) true
    (alpha > 1.7 && alpha < 3.0)

let test_power_law_degrees_range () =
  let rng = Prelude.Prng.create 20 in
  let degrees = Gen_config_model.power_law_degrees ~n:500 ~alpha:2.0 ~d_min:2 ~d_max:10 ~rng in
  Array.iter
    (fun d -> Alcotest.(check bool) "in range" true (d >= 2 && d <= 10))
    degrees;
  Alcotest.check_raises "bad range" (Invalid_argument "Gen_config_model.power_law_degrees: bad range")
    (fun () -> ignore (Gen_config_model.power_law_degrees ~n:5 ~alpha:2.0 ~d_min:0 ~d_max:3 ~rng))

let test_largest_component () =
  (* Two triangles and an isolated node: the function must return one
     triangle (3 nodes). *)
  let g = Graph.of_edges ~node_count:7 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ] in
  let giant = Gen_config_model.largest_component g in
  Alcotest.(check int) "three nodes" 3 (Graph.node_count giant);
  Alcotest.(check int) "three edges" 3 (Graph.edge_count giant);
  Alcotest.(check bool) "connected" true (Graph.is_connected giant)

let test_magoni_fit () =
  let r = Gen_magoni.fit ~routers:800 ~target_alpha:2.2 ~target_mean_distance:7.0 ~seed:21 in
  Alcotest.(check bool)
    (Printf.sprintf "fit error %.3f reasonable (alpha %.2f, dist %.2f)" r.error r.alpha
       r.mean_distance)
    true
    (r.error < 0.5);
  Alcotest.(check bool) "achieved alpha plausible" true (r.alpha > 1.5 && r.alpha < 4.0);
  (* The fitted parameters regenerate a valid connected map. *)
  let map = Gen_magoni.generate r.fitted ~seed:21 in
  Alcotest.(check bool) "fitted map connected" true (Graph.is_connected map.graph);
  Alcotest.check_raises "bad target" (Invalid_argument "Gen_magoni.fit: targets must be positive (alpha > 1)")
    (fun () -> ignore (Gen_magoni.fit ~routers:100 ~target_alpha:0.5 ~target_mean_distance:5.0 ~seed:1))

let qcheck_magoni_connected =
  QCheck.Test.make ~name:"magoni maps are always connected" ~count:10
    QCheck.(pair (int_range 50 400) small_int)
    (fun (routers, seed) ->
      let map = Gen_magoni.generate (Gen_magoni.default_params routers) ~seed in
      Graph.is_connected map.graph)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "generators",
    [
      Alcotest.test_case "er counts" `Quick test_er_counts;
      Alcotest.test_case "er bounds" `Quick test_er_bounds;
      Alcotest.test_case "er connected" `Quick test_er_connected;
      Alcotest.test_case "er determinism" `Quick test_er_determinism;
      Alcotest.test_case "ba structure" `Quick test_ba_structure;
      Alcotest.test_case "ba heavy tail" `Slow test_ba_heavy_tail;
      Alcotest.test_case "ba invalid" `Quick test_ba_invalid;
      Alcotest.test_case "glp structure" `Slow test_glp_structure;
      Alcotest.test_case "glp invalid" `Quick test_glp_invalid;
      Alcotest.test_case "waxman structure" `Quick test_waxman_structure;
      Alcotest.test_case "waxman locality" `Quick test_waxman_locality;
      Alcotest.test_case "transit-stub structure" `Quick test_transit_stub_structure;
      Alcotest.test_case "transit-stub hierarchy" `Quick test_transit_stub_hierarchy;
      Alcotest.test_case "magoni partition" `Quick test_magoni_partition;
      Alcotest.test_case "magoni core centrality" `Slow test_magoni_core_is_central;
      Alcotest.test_case "magoni heavy tail" `Slow test_magoni_heavy_tail;
      Alcotest.test_case "magoni determinism" `Quick test_magoni_determinism;
      Alcotest.test_case "magoni invalid" `Quick test_magoni_invalid;
      Alcotest.test_case "magoni fit" `Slow test_magoni_fit;
      Alcotest.test_case "config model degrees bounded" `Quick test_config_model_degrees_bounded;
      Alcotest.test_case "config model edge yield" `Quick test_config_model_realizes_most_edges;
      Alcotest.test_case "config model power law" `Slow test_config_model_power_law_shape;
      Alcotest.test_case "power-law degree range" `Quick test_power_law_degrees_range;
      Alcotest.test_case "largest component" `Quick test_largest_component;
      q qcheck_magoni_connected;
    ] )
