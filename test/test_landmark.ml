(* Landmark placement policies and closest-landmark selection. *)

open Nearby

let map_and_rng ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 600) ~seed in
  (map, Prelude.Prng.create seed)

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check (option bool)) "name roundtrips" (Some true)
        (Option.map (fun p' -> p' = p) (Landmark.policy_of_string (Landmark.policy_name p))))
    Landmark.all_policies;
  Alcotest.(check bool) "unknown name" true (Landmark.policy_of_string "bogus" = None)

let check_distinct g landmarks count =
  Alcotest.(check int) "requested count" count (Array.length landmarks);
  let sorted = List.sort_uniq compare (Array.to_list landmarks) in
  Alcotest.(check int) "distinct" count (List.length sorted);
  Array.iter
    (fun l ->
      Alcotest.(check bool) "valid router" true (l >= 0 && l < Topology.Graph.node_count g))
    landmarks

let test_all_policies_distinct () =
  let map, rng = map_and_rng ~seed:1 in
  List.iter
    (fun policy ->
      let landmarks = Landmark.place map.graph policy ~count:8 ~rng in
      check_distinct map.graph landmarks 8)
    Landmark.all_policies

let test_medium_degree_band () =
  let map, rng = map_and_rng ~seed:2 in
  let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:8 ~rng in
  Array.iter
    (fun l ->
      (* The paper attaches landmarks to medium-size-degree routers: never a
         leaf, never the top hub. *)
      let d = Topology.Graph.degree map.graph l in
      Alcotest.(check bool) "not a leaf" true (d >= 2);
      Alcotest.(check bool) "not the biggest hub" true (d < Topology.Graph.max_degree map.graph))
    landmarks

let test_high_degree_policy () =
  let map, rng = map_and_rng ~seed:3 in
  let landmarks = Landmark.place map.graph Landmark.High_degree ~count:3 ~rng in
  (* Must be exactly the top-3 degrees (ties toward lower id). *)
  let scores = Array.init (Topology.Graph.node_count map.graph) (fun v -> float_of_int (Topology.Graph.degree map.graph v)) in
  let expected = Array.of_list (Topology.Centrality.top_by scores 3) in
  Alcotest.(check (array int)) "top by degree" expected landmarks

let test_spread_policy_disperses () =
  let map, rng = map_and_rng ~seed:4 in
  let spread = Landmark.place map.graph Landmark.Spread ~count:6 ~rng in
  let high = Landmark.place map.graph Landmark.High_degree ~count:6 ~rng in
  let min_pairwise landmarks =
    let best = ref max_int in
    Array.iter
      (fun a ->
        Array.iter
          (fun b -> if a <> b then best := min !best (Topology.Bfs.distance map.graph a b))
          landmarks)
      landmarks;
    !best
  in
  (* Spread must achieve at least the dispersion of the pure-hub policy
     (hubs cluster in the core). *)
  Alcotest.(check bool) "spread disperses" true (min_pairwise spread >= min_pairwise high)

let test_place_validation () =
  let map, rng = map_and_rng ~seed:5 in
  Alcotest.check_raises "zero count" (Invalid_argument "Landmark.place: count must be >= 1")
    (fun () -> ignore (Landmark.place map.graph Landmark.Uniform_random ~count:0 ~rng));
  Alcotest.check_raises "too many"
    (Invalid_argument "Landmark.place: not enough candidate routers") (fun () ->
      ignore (Landmark.place map.graph Landmark.Uniform_random ~count:100_000 ~rng))

let test_closest () =
  let d = Eval.Paper_drawing.build () in
  let oracle = Traceroute.Route_oracle.create d.graph in
  (* From p3 (route p3-r5-rb-ra-lmk), landmark rc is 3 hops, lmk is 4. *)
  let lmk, rtt = Landmark.closest oracle ~landmarks:[| d.lmk; d.rc |] d.p3 in
  Alcotest.(check int) "closest is rc" d.rc lmk;
  Alcotest.(check (float 1e-9)) "rtt is 2 x 3 hops" 6.0 rtt;
  Alcotest.check_raises "no landmarks" (Invalid_argument "Landmark.closest: no landmarks")
    (fun () -> ignore (Landmark.closest oracle ~landmarks:[||] d.p1))

let test_closest_tie_break () =
  (* Symmetric 4-cycle: two landmarks equidistant from node 0; the lower id
     must win deterministically. *)
  let g = Topology.Graph.of_edges ~node_count:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let oracle = Traceroute.Route_oracle.create g in
  let lmk, _ = Landmark.closest oracle ~landmarks:[| 3; 1 |] 0 in
  Alcotest.(check int) "lower id wins the tie" 1 lmk

let test_closest_deterministic_without_rng () =
  let map, rng = map_and_rng ~seed:6 in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:6 ~rng in
  let peer = map.leaves.(0) in
  let a = Landmark.closest oracle ~landmarks peer in
  let b = Landmark.closest oracle ~landmarks peer in
  Alcotest.(check bool) "repeatable" true (a = b)

let test_optimized_beats_random_objective () =
  let map, rng = map_and_rng ~seed:7 in
  let clients = Array.sub map.leaves 0 (min 200 (Array.length map.leaves)) in
  let optimized = Landmark.place map.graph Landmark.Optimized ~count:6 ~rng in
  let random = Landmark.place map.graph Landmark.Uniform_random ~count:6 ~rng in
  let obj landmarks = Placement_opt.objective map.graph ~landmarks ~clients in
  Alcotest.(check bool)
    (Printf.sprintf "optimized %.2f <= random %.2f" (obj optimized) (obj random))
    true
    (obj optimized <= obj random +. 1e-9)

let test_optimized_beats_medium_objective () =
  let map, rng = map_and_rng ~seed:8 in
  let clients = Array.sub map.leaves 0 (min 200 (Array.length map.leaves)) in
  let optimized = Landmark.place map.graph Landmark.Optimized ~count:4 ~rng in
  let medium = Landmark.place map.graph Landmark.Medium_degree ~count:4 ~rng in
  let obj landmarks = Placement_opt.objective map.graph ~landmarks ~clients in
  Alcotest.(check bool) "k-median no worse than the heuristic band" true
    (obj optimized <= obj medium +. 0.25)

let test_placement_objective_monotone () =
  (* Adding a landmark can only reduce the k-median objective. *)
  let map, rng = map_and_rng ~seed:9 in
  let clients = Array.sub map.leaves 0 100 in
  let four = Landmark.place map.graph Landmark.Spread ~count:4 ~rng in
  let three = Array.sub four 0 3 in
  Alcotest.(check bool) "more landmarks, closer clients" true
    (Placement_opt.objective map.graph ~landmarks:four ~clients
    <= Placement_opt.objective map.graph ~landmarks:three ~clients +. 1e-9)

let test_placement_validation () =
  let map, rng = map_and_rng ~seed:10 in
  Alcotest.check_raises "zero count" (Invalid_argument "Placement_opt.place: count must be >= 1")
    (fun () -> ignore (Placement_opt.place map.graph ~count:0 ~rng));
  Alcotest.(check (float 1e-9)) "empty objective" 0.0
    (Placement_opt.objective map.graph ~landmarks:[||] ~clients:[||])

let suite =
  ( "landmark",
    [
      Alcotest.test_case "policy names" `Quick test_policy_names;
      Alcotest.test_case "all policies distinct" `Quick test_all_policies_distinct;
      Alcotest.test_case "medium-degree band" `Quick test_medium_degree_band;
      Alcotest.test_case "high-degree policy" `Quick test_high_degree_policy;
      Alcotest.test_case "spread disperses" `Quick test_spread_policy_disperses;
      Alcotest.test_case "place validation" `Quick test_place_validation;
      Alcotest.test_case "closest" `Quick test_closest;
      Alcotest.test_case "closest tie-break" `Quick test_closest_tie_break;
      Alcotest.test_case "closest deterministic" `Quick test_closest_deterministic_without_rng;
      Alcotest.test_case "optimized beats random objective" `Slow test_optimized_beats_random_objective;
      Alcotest.test_case "optimized vs medium objective" `Slow test_optimized_beats_medium_objective;
      Alcotest.test_case "objective monotone" `Quick test_placement_objective_monotone;
      Alcotest.test_case "placement validation" `Quick test_placement_validation;
    ] )
