(* Lru cache and its route-oracle integration. *)

open Prelude

let test_basic () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Lru.capacity c);
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "find b" (Some 2) (Lru.find c "b");
  Alcotest.(check bool) "mem" true (Lru.mem c "a");
  Alcotest.(check (option int)) "miss" None (Lru.find c "z")

let test_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "one";
  Lru.add c 2 "two";
  (* Touch 1 so 2 becomes the LRU. *)
  ignore (Lru.find c 1);
  Lru.add c 3 "three";
  Alcotest.(check bool) "2 evicted" false (Lru.mem c 2);
  Alcotest.(check bool) "1 kept" true (Lru.mem c 1);
  Alcotest.(check bool) "3 kept" true (Lru.mem c 3);
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c)

let test_replace_refreshes () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  (* "a" is most recent; adding c evicts "b". *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "replaced value" (Some 10) (Lru.find c "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check int) "length stable" 2 (Lru.length c)

let test_remove_and_clear () =
  let c = Lru.create ~capacity:3 in
  Lru.add c 1 1;
  Lru.add c 2 2;
  Lru.remove c 1;
  Lru.remove c 1;
  Alcotest.(check int) "after remove" 1 (Lru.length c);
  Lru.clear c;
  Alcotest.(check int) "after clear" 0 (Lru.length c);
  Lru.add c 5 5;
  Alcotest.(check (option int)) "reusable" (Some 5) (Lru.find c 5)

let test_fold_order () =
  let c = Lru.create ~capacity:3 in
  Lru.add c 1 ();
  Lru.add c 2 ();
  Lru.add c 3 ();
  ignore (Lru.find c 1);
  let keys = List.rev (Lru.fold c ~init:[] ~f:(fun acc k () -> k :: acc)) in
  Alcotest.(check (list int)) "most recent first" [ 1; 3; 2 ] keys

let test_capacity_validation () =
  Alcotest.check_raises "zero" (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create ~capacity:0))

let qcheck_lru_model =
  QCheck.Test.make ~name:"lru behaves like an association with recency eviction" ~count:200
    QCheck.(list (pair (int_range 0 9) (int_range 0 99)))
    (fun ops ->
      let cap = 4 in
      let c = Lru.create ~capacity:cap in
      (* Reference model: association list, most recent first. *)
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          Lru.add c k v;
          model := (k, v) :: List.remove_assoc k !model;
          if List.length !model > cap then
            model := List.filteri (fun i _ -> i < cap) !model)
        ops;
      List.for_all (fun (k, v) -> Lru.find c k = Some v) !model
      && Lru.length c = List.length !model)

let test_bounded_oracle_consistent () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 300) ~seed:9 in
  let unbounded = Traceroute.Route_oracle.create map.graph in
  let bounded = Traceroute.Route_oracle.create ~max_cached_trees:2 map.graph in
  (* Query many destinations twice: routes must match the unbounded oracle
     exactly, and the cache must stay within its bound. *)
  let destinations = Array.sub map.core 0 8 in
  for _round = 1 to 2 do
    Array.iter
      (fun dst ->
        Array.iter
          (fun src ->
            Alcotest.(check (list int)) "bounded = unbounded"
              (Traceroute.Route_oracle.route unbounded ~src ~dst)
              (Traceroute.Route_oracle.route bounded ~src ~dst))
          (Array.sub map.leaves 0 5))
      destinations
  done;
  Alcotest.(check bool) "cache bounded" true
    (Traceroute.Route_oracle.cached_destinations bounded <= 2);
  Alcotest.(check bool) "unbounded kept everything" true
    (Traceroute.Route_oracle.cached_destinations unbounded = 8)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "lru",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "eviction order" `Quick test_eviction_order;
      Alcotest.test_case "replace refreshes" `Quick test_replace_refreshes;
      Alcotest.test_case "remove/clear" `Quick test_remove_and_clear;
      Alcotest.test_case "fold order" `Quick test_fold_order;
      Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
      q qcheck_lru_model;
      Alcotest.test_case "bounded route oracle" `Quick test_bounded_oracle_consistent;
    ] )
