(* Super_peer delegation (extension E2). *)

open Nearby

let setup ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 400) ~seed in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let rng = Prelude.Prng.create seed in
  let landmarks = Landmark.place map.graph Landmark.Medium_degree ~count:4 ~rng in
  (map, oracle, landmarks)

let test_create_validation () =
  let _, oracle, landmarks = setup ~seed:1 in
  Alcotest.check_raises "mismatched arrays"
    (Invalid_argument "Super_peer.create: need one super router per landmark") (fun () ->
      ignore (Super_peer.create oracle ~landmarks ~super_routers:[| 1 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Super_peer.create: no landmarks") (fun () ->
      ignore (Super_peer.create oracle ~landmarks:[||] ~super_routers:[||]))

let test_join_and_loads () =
  let map, oracle, landmarks = setup ~seed:2 in
  let sp = Super_peer.create oracle ~landmarks ~super_routers:landmarks in
  for peer = 0 to 39 do
    let lmk = Super_peer.join sp ~peer ~attach_router:map.leaves.(peer) in
    Alcotest.(check bool) "landmark known" true (Array.mem lmk landmarks)
  done;
  Alcotest.(check int) "peer count" 40 (Super_peer.peer_count sp);
  let loads = Super_peer.loads sp in
  Alcotest.(check int) "one region per landmark" 4 (List.length loads);
  let members = List.fold_left (fun acc (l : Super_peer.region_load) -> acc + l.members) 0 loads in
  Alcotest.(check int) "members sum to population" 40 members;
  let joins = List.fold_left (fun acc (l : Super_peer.region_load) -> acc + l.joins_handled) 0 loads in
  Alcotest.(check int) "joins sum" 40 joins;
  Alcotest.(check bool) "imbalance >= 1" true (Super_peer.load_imbalance sp >= 1.0)

let test_duplicate_join () =
  let map, oracle, landmarks = setup ~seed:3 in
  let sp = Super_peer.create oracle ~landmarks ~super_routers:landmarks in
  ignore (Super_peer.join sp ~peer:0 ~attach_router:map.leaves.(0));
  Alcotest.check_raises "duplicate" (Invalid_argument "Super_peer.join: peer already registered")
    (fun () -> ignore (Super_peer.join sp ~peer:0 ~attach_router:map.leaves.(1)))

let test_neighbors_regional () =
  let map, oracle, landmarks = setup ~seed:4 in
  let sp = Super_peer.create oracle ~landmarks ~super_routers:landmarks in
  let home = Hashtbl.create 64 in
  for peer = 0 to 59 do
    Hashtbl.add home peer (Super_peer.join sp ~peer ~attach_router:map.leaves.(peer mod Array.length map.leaves))
  done;
  for peer = 0 to 59 do
    let reply = Super_peer.neighbors sp ~peer ~k:4 in
    Alcotest.(check bool) "at most k" true (List.length reply <= 4);
    List.iter
      (fun (p, d) ->
        Alcotest.(check bool) "not self" true (p <> peer);
        Alcotest.(check bool) "same region only" true (Hashtbl.find home p = Hashtbl.find home peer);
        Alcotest.(check bool) "distance sane" true (d >= 0))
      reply
  done;
  let queries =
    List.fold_left (fun acc (l : Super_peer.region_load) -> acc + l.queries_handled) 0 (Super_peer.loads sp)
  in
  Alcotest.(check int) "queries counted" 60 queries

let test_same_answers_as_central_within_region () =
  let map, oracle, landmarks = setup ~seed:5 in
  let sp = Super_peer.create oracle ~landmarks ~super_routers:landmarks in
  let central = Server.create oracle ~landmarks in
  for peer = 0 to 49 do
    let attach = map.leaves.(peer mod Array.length map.leaves) in
    ignore (Super_peer.join sp ~peer ~attach_router:attach);
    ignore (Server.join central ~peer ~attach_router:attach)
  done;
  (* The super-peer reply must be a prefix of the central reply (same tree,
     same order) whenever the central answer needed no cross-tree top-up. *)
  for peer = 0 to 49 do
    let sp_reply = Super_peer.neighbors sp ~peer ~k:3 in
    let central_reply = Server.neighbors central ~peer ~k:3 in
    let central_same_tree = List.filter (fun (_, d) -> d <> max_int) central_reply in
    let rec is_prefix a b =
      match (a, b) with
      | [], _ -> true
      | x :: xs, y :: ys -> x = y && is_prefix xs ys
      | _ :: _, [] -> false
    in
    Alcotest.(check bool) "regional answers agree" true (is_prefix sp_reply central_same_tree || sp_reply = central_same_tree)
  done

let test_leave () =
  let map, oracle, landmarks = setup ~seed:6 in
  let sp = Super_peer.create oracle ~landmarks ~super_routers:landmarks in
  for peer = 0 to 9 do
    ignore (Super_peer.join sp ~peer ~attach_router:map.leaves.(peer))
  done;
  Super_peer.leave sp ~peer:4;
  Alcotest.(check int) "count" 9 (Super_peer.peer_count sp);
  Alcotest.check_raises "unknown neighbors" Not_found (fun () ->
      ignore (Super_peer.neighbors sp ~peer:4 ~k:2));
  Alcotest.check_raises "double leave" Not_found (fun () -> Super_peer.leave sp ~peer:4)

let test_empty_imbalance () =
  let _, oracle, landmarks = setup ~seed:7 in
  let sp = Super_peer.create oracle ~landmarks ~super_routers:landmarks in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Super_peer.load_imbalance sp)

let suite =
  ( "super_peer",
    [
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "join and loads" `Quick test_join_and_loads;
      Alcotest.test_case "duplicate join" `Quick test_duplicate_join;
      Alcotest.test_case "regional neighbors" `Quick test_neighbors_regional;
      Alcotest.test_case "matches central server" `Quick test_same_answers_as_central_within_region;
      Alcotest.test_case "leave" `Quick test_leave;
      Alcotest.test_case "empty imbalance" `Quick test_empty_imbalance;
    ] )
