(* Graph (CSR) and Builder. *)

open Topology

let triangle () = Graph.of_edges ~node_count:3 [ (0, 1); (1, 2); (0, 2) ]

(* A path 0-1-2-3 plus a pendant 4 off node 1. *)
let small () = Graph.of_edges ~node_count:5 [ (0, 1); (1, 2); (2, 3); (1, 4) ]

let test_counts () =
  let g = small () in
  Alcotest.(check int) "nodes" 5 (Graph.node_count g);
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check int) "degree 1" 3 (Graph.degree g 1);
  Alcotest.(check int) "degree 4" 1 (Graph.degree g 4);
  Alcotest.(check int) "max degree" 3 (Graph.max_degree g);
  Alcotest.(check (float 1e-9)) "mean degree" 1.6 (Graph.mean_degree g)

let test_neighbors_sorted () =
  let g = Graph.of_edges ~node_count:4 [ (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted neighbors" [| 0; 1; 3 |] (Graph.neighbors g 2)

let test_mem_edge () =
  let g = small () in
  Alcotest.(check bool) "present" true (Graph.mem_edge g 1 4);
  Alcotest.(check bool) "symmetric" true (Graph.mem_edge g 4 1);
  Alcotest.(check bool) "absent" false (Graph.mem_edge g 0 3);
  Alcotest.(check bool) "no self edge" false (Graph.mem_edge g 2 2)

let test_edges_canonical () =
  let g = small () in
  Alcotest.(check (list (pair int int))) "u < v, sorted" [ (0, 1); (1, 2); (1, 4); (2, 3) ]
    (Graph.edges g)

let test_roundtrip () =
  let edges = [ (0, 3); (1, 2); (0, 1) ] in
  let g = Graph.of_edges ~node_count:4 edges in
  Alcotest.(check (list (pair int int))) "roundtrip" [ (0, 1); (0, 3); (1, 2) ] (Graph.edges g)

let test_of_edges_errors () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
      ignore (Graph.of_edges ~node_count:2 [ (1, 1) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.of_edges: duplicate edge") (fun () ->
      ignore (Graph.of_edges ~node_count:2 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.of_edges: endpoint out of range")
    (fun () -> ignore (Graph.of_edges ~node_count:2 [ (0, 2) ]))

let test_iter_fold () =
  let g = triangle () in
  let seen = ref [] in
  Graph.iter_neighbors g 0 (fun v -> seen := v :: !seen);
  Alcotest.(check (list int)) "iter order" [ 1; 2 ] (List.rev !seen);
  Alcotest.(check int) "fold sum" 3 (Graph.fold_neighbors g 0 (fun acc v -> acc + v) 0)

let test_connectivity () =
  Alcotest.(check bool) "triangle connected" true (Graph.is_connected (triangle ()));
  let disconnected = Graph.of_edges ~node_count:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two components" false (Graph.is_connected disconnected);
  Alcotest.(check bool) "empty graph" true (Graph.is_connected (Graph.of_edges ~node_count:0 []));
  Alcotest.(check bool) "singleton" true (Graph.is_connected (Graph.of_edges ~node_count:1 []))

let test_nodes_with_degree () =
  let g = small () in
  Alcotest.(check (list int)) "degree-1 nodes" [ 0; 3; 4 ] (Graph.nodes_with_degree g 1);
  Alcotest.(check (list int)) "degree-3 nodes" [ 1 ] (Graph.nodes_with_degree g 3);
  Alcotest.(check (list int)) "matching" [ 1; 2 ]
    (Graph.nodes_matching g (fun _ d -> d >= 2))

let test_out_of_range_access () =
  let g = triangle () in
  Alcotest.check_raises "degree oob" (Invalid_argument "Graph.degree: node out of range") (fun () ->
      ignore (Graph.degree g 3))

(* --- Builder --- *)

let test_builder_basic () =
  let b = Builder.create 4 in
  Alcotest.(check bool) "add" true (Builder.add_edge b 0 1);
  Alcotest.(check bool) "duplicate rejected" false (Builder.add_edge b 1 0);
  Alcotest.(check bool) "self rejected" false (Builder.add_edge b 2 2);
  Alcotest.(check int) "edge count" 1 (Builder.edge_count b);
  Alcotest.(check int) "degree" 1 (Builder.degree b 0);
  Alcotest.(check bool) "mem" true (Builder.mem_edge b 0 1);
  Alcotest.(check bool) "not mem" false (Builder.mem_edge b 0 2)

let test_builder_to_graph () =
  let b = Builder.create 5 in
  ignore (Builder.add_edge b 0 1);
  ignore (Builder.add_edge b 3 2);
  ignore (Builder.add_edge b 4 0);
  let g = Builder.to_graph b in
  Alcotest.(check int) "nodes" 5 (Graph.node_count g);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 4); (2, 3) ] (Graph.edges g)

let test_builder_iter () =
  let b = Builder.create 3 in
  ignore (Builder.add_edge b 0 1);
  ignore (Builder.add_edge b 0 2);
  let acc = ref [] in
  Builder.iter_neighbors b 0 (fun v -> acc := v :: !acc);
  Alcotest.(check (list int)) "insertion order" [ 1; 2 ] (List.rev !acc)

let qcheck_builder_graph_agree =
  QCheck.Test.make ~name:"builder and frozen graph agree on edges" ~count:100
    QCheck.(list (pair (int_range 0 9) (int_range 0 9)))
    (fun pairs ->
      let b = Builder.create 10 in
      List.iter (fun (u, v) -> ignore (Builder.add_edge b u v)) pairs;
      let g = Builder.to_graph b in
      Graph.edge_count g = Builder.edge_count b
      && List.for_all (fun (u, v) -> u = v || Graph.mem_edge g u v = Builder.mem_edge b u v) pairs)

let qcheck_degree_sum =
  QCheck.Test.make ~name:"sum of degrees = 2 * edges" ~count:100
    QCheck.(list (pair (int_range 0 14) (int_range 0 14)))
    (fun pairs ->
      let b = Builder.create 15 in
      List.iter (fun (u, v) -> ignore (Builder.add_edge b u v)) pairs;
      let g = Builder.to_graph b in
      let sum = ref 0 in
      for v = 0 to 14 do
        sum := !sum + Graph.degree g v
      done;
      !sum = 2 * Graph.edge_count g)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "graph",
    [
      Alcotest.test_case "counts" `Quick test_counts;
      Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
      Alcotest.test_case "mem_edge" `Quick test_mem_edge;
      Alcotest.test_case "edges canonical" `Quick test_edges_canonical;
      Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "of_edges errors" `Quick test_of_edges_errors;
      Alcotest.test_case "iter/fold" `Quick test_iter_fold;
      Alcotest.test_case "connectivity" `Quick test_connectivity;
      Alcotest.test_case "nodes_with_degree" `Quick test_nodes_with_degree;
      Alcotest.test_case "out of range" `Quick test_out_of_range_access;
      Alcotest.test_case "builder basic" `Quick test_builder_basic;
      Alcotest.test_case "builder to_graph" `Quick test_builder_to_graph;
      Alcotest.test_case "builder iter" `Quick test_builder_iter;
      q qcheck_builder_graph_agree;
      q qcheck_degree_sum;
    ] )
