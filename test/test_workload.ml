(* Workload: open-loop arrival processes (thinning), determinism, and the
   churn departure draws. *)

open Simkit

let times process ~seed ~until_ms =
  Workload.arrival_times ~rng:(Prelude.Prng.create seed) process ~until_ms

let count_in times lo hi = List.length (List.filter (fun t -> t >= lo && t < hi) times)

let test_validate () =
  let rejects p =
    match Workload.validate p with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "invalid process accepted"
  in
  rejects (Workload.Poisson { rate_per_s = 0.0 });
  rejects (Workload.Diurnal { base_per_s = 1.0; amplitude = 1.5; period_s = 10.0 });
  rejects (Workload.Diurnal { base_per_s = 1.0; amplitude = 0.5; period_s = 0.0 });
  rejects
    (Workload.Flash { base_per_s = 10.0; spike_per_s = 5.0; spike_at_s = 1.0; spike_len_s = 1.0 });
  rejects
    (Workload.Flash { base_per_s = 1.0; spike_per_s = 2.0; spike_at_s = -1.0; spike_len_s = 1.0 });
  Workload.validate (Workload.Poisson { rate_per_s = 5.0 })

let test_rates () =
  let diurnal = Workload.Diurnal { base_per_s = 100.0; amplitude = 0.5; period_s = 60.0 } in
  Alcotest.(check (float 1e-6)) "diurnal peak" 150.0 (Workload.peak_rate diurnal);
  (* Peak of the sine is a quarter period in. *)
  Alcotest.(check (float 1e-6)) "diurnal crest" 150.0 (Workload.rate_at diurnal ~t_ms:15_000.0);
  Alcotest.(check (float 1e-6)) "diurnal trough" 50.0 (Workload.rate_at diurnal ~t_ms:45_000.0);
  let flash =
    Workload.Flash { base_per_s = 10.0; spike_per_s = 80.0; spike_at_s = 2.0; spike_len_s = 3.0 }
  in
  Alcotest.(check (float 1e-6)) "flash baseline" 10.0 (Workload.rate_at flash ~t_ms:1_000.0);
  Alcotest.(check (float 1e-6)) "flash spike" 80.0 (Workload.rate_at flash ~t_ms:3_000.0);
  Alcotest.(check (float 1e-6)) "flash after" 10.0 (Workload.rate_at flash ~t_ms:5_500.0);
  Alcotest.(check (float 1e-6)) "flash peak" 80.0 (Workload.peak_rate flash);
  (* 10/s for 10 s plus 70/s extra for the 3 s spike. *)
  Alcotest.(check (float 1e-6)) "flash integral" 310.0
    (Workload.expected_arrivals flash ~until_ms:10_000.0)

let test_determinism () =
  let p =
    Workload.Flash { base_per_s = 50.0; spike_per_s = 200.0; spike_at_s = 1.0; spike_len_s = 2.0 }
  in
  let a = times p ~seed:7 ~until_ms:5_000.0 in
  let b = times p ~seed:7 ~until_ms:5_000.0 in
  Alcotest.(check (list (float 1e-12))) "same seed, same schedule" a b;
  let c = times p ~seed:8 ~until_ms:5_000.0 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_schedule_shape () =
  let p = Workload.Poisson { rate_per_s = 100.0 } in
  let ts = times p ~seed:3 ~until_ms:20_000.0 in
  let increasing = ref true and last = ref 0.0 in
  List.iter
    (fun t ->
      if t <= !last then increasing := false;
      last := t)
    ts;
  Alcotest.(check bool) "strictly increasing" true !increasing;
  Alcotest.(check bool) "within horizon" true (List.for_all (fun t -> t > 0.0 && t <= 20_000.0) ts);
  (* Expected 2000 arrivals; 5 sigma is ~224. *)
  Alcotest.(check bool) "count near the integral" true (abs (List.length ts - 2000) < 224)

let test_diurnal_modulation () =
  (* One full period: the positive half-wave must out-arrive the negative. *)
  let p = Workload.Diurnal { base_per_s = 100.0; amplitude = 1.0; period_s = 20.0 } in
  let ts = times p ~seed:11 ~until_ms:20_000.0 in
  let crest = count_in ts 0.0 10_000.0 and trough = count_in ts 10_000.0 20_000.0 in
  Alcotest.(check bool) "crest beats trough" true (float_of_int crest > 2.0 *. float_of_int trough)

let test_flash_density () =
  let p =
    Workload.Flash { base_per_s = 20.0; spike_per_s = 200.0; spike_at_s = 4.0; spike_len_s = 2.0 }
  in
  let ts = times p ~seed:13 ~until_ms:10_000.0 in
  let before = count_in ts 0.0 4_000.0 in
  let spike = count_in ts 4_000.0 6_000.0 in
  let after = count_in ts 6_000.0 10_000.0 in
  (* 80 expected before, 400 in the spike, 80 after. *)
  Alcotest.(check bool) "spike density" true (spike > 4 * before && spike > 4 * after);
  Alcotest.(check bool) "spike count plausible" true (abs (spike - 400) < 100)

let test_install_on_engine () =
  let engine = Engine.create () in
  let p = Workload.Poisson { rate_per_s = 50.0 } in
  let seen = ref [] in
  let n =
    Workload.install ~engine ~rng:(Prelude.Prng.create 5) p ~until_ms:4_000.0
      ~on_arrival:(fun i -> seen := (i, Engine.now engine) :: !seen)
  in
  Alcotest.(check int) "nothing fires before run" 0 (List.length !seen);
  Engine.run engine;
  let seen = List.rev !seen in
  Alcotest.(check int) "every arrival fired" n (List.length seen);
  List.iteri
    (fun expect (i, t) ->
      Alcotest.(check int) "indices in schedule order" expect i;
      Alcotest.(check bool) "inside the horizon" true (t > 0.0 && t <= 4_000.0))
    seen;
  (* The engine replay must equal the eager schedule under the same seed. *)
  let eager = times p ~seed:5 ~until_ms:4_000.0 in
  Alcotest.(check (list (float 1e-12))) "install replays arrival_times" eager
    (List.map snd seen)

let test_churn_draws () =
  Alcotest.(check bool) "no churn never departs" true
    (Workload.draw_departure Workload.no_churn ~rng:(Prelude.Prng.create 1) = None);
  (match
     Workload.validate_churn { Workload.session = None; mobility_fraction = 1.5 }
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mobility fraction above 1 accepted");
  let rng = Prelude.Prng.create 2 in
  let churn =
    {
      Workload.session = Some (Churn.Exponential { mean_ms = 500.0 });
      mobility_fraction = 1.0;
    }
  in
  let acc = ref 0.0 in
  let n = 5_000 in
  for _ = 1 to n do
    match Workload.draw_departure churn ~rng with
    | Some (dwell, Churn.Handover) ->
        Alcotest.(check bool) "positive dwell" true (dwell >= 0.0);
        acc := !acc +. dwell
    | Some (_, (Churn.Leave | Churn.Crash)) ->
        Alcotest.fail "mobility_fraction 1.0 must always hand over"
    | None -> Alcotest.fail "session model set but no departure"
  done;
  Alcotest.(check bool) "dwell mean near the session mean" true
    (abs_float ((!acc /. float_of_int n) -. 500.0) < 25.0);
  let leaves_only = { churn with Workload.mobility_fraction = 0.0 } in
  match Workload.draw_departure leaves_only ~rng with
  | Some (_, Churn.Leave) -> ()
  | _ -> Alcotest.fail "mobility_fraction 0.0 must leave gracefully"

let suite =
  ( "workload",
    [
      Alcotest.test_case "validate" `Quick test_validate;
      Alcotest.test_case "rates and integrals" `Quick test_rates;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "poisson schedule shape" `Quick test_schedule_shape;
      Alcotest.test_case "diurnal modulation" `Quick test_diurnal_modulation;
      Alcotest.test_case "flash density" `Quick test_flash_density;
      Alcotest.test_case "install on engine" `Quick test_install_on_engine;
      Alcotest.test_case "churn departure draws" `Quick test_churn_draws;
    ] )
