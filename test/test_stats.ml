(* Stats, Histogram, Table, Ascii_plot. *)

open Prelude

let feq = Alcotest.(check (float 1e-9))

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  feq "mean" 0.0 (Stats.mean s);
  feq "variance" 0.0 (Stats.variance s);
  feq "ci" 0.0 (Stats.ci95_halfwidth s);
  Alcotest.check_raises "min" (Invalid_argument "Stats.min_value: empty") (fun () ->
      ignore (Stats.min_value s))

let test_stats_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  feq "mean" 5.0 (Stats.mean s);
  (* Population variance is 4; sample variance = 32/7. *)
  feq "sample variance" (32.0 /. 7.0) (Stats.variance s);
  feq "min" 2.0 (Stats.min_value s);
  feq "max" 9.0 (Stats.max_value s);
  feq "sum" 40.0 (Stats.sum s)

let test_stats_merge_matches_concat () =
  let xs = [ 1.0; 2.0; 3.5 ] and ys = [ -4.0; 0.5; 2.5; 6.0 ] in
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let merged = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean whole) (Stats.mean merged);
  Alcotest.(check (float 1e-9)) "variance" (Stats.variance whole) (Stats.variance merged);
  feq "min" (Stats.min_value whole) (Stats.min_value merged);
  feq "max" (Stats.max_value whole) (Stats.max_value merged)

let test_stats_merge_with_empty () =
  let a = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  let e = Stats.create () in
  let m = Stats.merge a e in
  Alcotest.(check int) "count" 2 (Stats.count m);
  feq "mean" 1.5 (Stats.mean m)

let qcheck_merge =
  QCheck.Test.make ~name:"stats merge = concat" ~count:200
    QCheck.(pair (list (float_bound_inclusive 100.0)) (list (float_bound_inclusive 100.0)))
    (fun (xs, ys) ->
      let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
      List.iter (Stats.add a) xs;
      List.iter (Stats.add b) ys;
      List.iter (Stats.add whole) (xs @ ys);
      let m = Stats.merge a b in
      Stats.count m = Stats.count whole
      && abs_float (Stats.mean m -. Stats.mean whole) < 1e-6
      && abs_float (Stats.variance m -. Stats.variance whole) < 1e-6)

let test_percentile () =
  let xs = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  feq "p0 = min" 15.0 (Stats.percentile xs 0.0);
  feq "p100 = max" 50.0 (Stats.percentile xs 100.0);
  feq "median" 35.0 (Stats.median xs);
  feq "p25 interpolates" 20.0 (Stats.percentile xs 25.0);
  feq "single" 7.0 (Stats.percentile [| 7.0 |] 50.0);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  Alcotest.check_raises "bad p" (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (Stats.percentile xs 101.0))

let test_percentile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.median xs);
  Alcotest.(check (array (float 0.0))) "input intact" [| 3.0; 1.0; 2.0 |] xs

let test_mean_of () =
  feq "empty" 0.0 (Stats.mean_of [||]);
  feq "values" 2.0 (Stats.mean_of [| 1.0; 2.0; 3.0 |])

(* --- Histogram --- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty total" 0 (Histogram.total h);
  Alcotest.(check int) "empty max" (-1) (Histogram.max_observed h);
  List.iter (Histogram.add h) [ 1; 1; 2; 5 ];
  Histogram.add_many h 2 3;
  Alcotest.(check int) "count 1" 2 (Histogram.count h 1);
  Alcotest.(check int) "count 2" 4 (Histogram.count h 2);
  Alcotest.(check int) "count unseen" 0 (Histogram.count h 3);
  Alcotest.(check int) "total" 7 (Histogram.total h);
  Alcotest.(check int) "max" 5 (Histogram.max_observed h);
  feq "mean" ((2.0 +. 8.0 +. 5.0) /. 7.0) (Histogram.mean h);
  feq "fraction" (2.0 /. 7.0) (Histogram.fraction_at h 1)

let test_histogram_assoc_ccdf () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 0; 1; 3 ];
  Alcotest.(check (list (pair int int))) "assoc" [ (0, 2); (1, 1); (3, 1) ] (Histogram.to_assoc h);
  let ccdf = Histogram.ccdf h in
  Alcotest.(check int) "ccdf length" 3 (List.length ccdf);
  (match ccdf with
  | (v0, p0) :: _ ->
      Alcotest.(check int) "first value" 0 v0;
      feq "P(X >= 0) = 1" 1.0 p0
  | [] -> Alcotest.fail "empty ccdf");
  (match List.rev ccdf with
  | (v_last, p_last) :: _ ->
      Alcotest.(check int) "last value" 3 v_last;
      feq "P(X >= 3)" 0.25 p_last
  | [] -> Alcotest.fail "empty ccdf")

let test_histogram_ccdf_monotone () =
  let h = Histogram.create () in
  let g = Prng.create 4 in
  for _ = 1 to 1000 do
    Histogram.add h (Prng.int g 30)
  done;
  let rec check_desc = function
    | (_, p1) :: ((_, p2) :: _ as rest) ->
        Alcotest.(check bool) "non-increasing" true (p1 >= p2);
        check_desc rest
    | _ -> ()
  in
  check_desc (Histogram.ccdf h)

let test_histogram_log2_buckets () =
  Alcotest.(check int) "nan" 0 (Histogram.log2_bucket Float.nan);
  Alcotest.(check int) "below one" 0 (Histogram.log2_bucket 0.5);
  Alcotest.(check int) "exactly one" 0 (Histogram.log2_bucket 1.0);
  Alcotest.(check int) "two closes bucket 1" 1 (Histogram.log2_bucket 2.0);
  Alcotest.(check int) "just past two" 2 (Histogram.log2_bucket 2.1);
  Alcotest.(check int) "power of two upper edge" 10 (Histogram.log2_bucket 1024.0);
  let h = Histogram.create () in
  Histogram.add_log2 h 3.0;
  Alcotest.(check int) "sample lands in its bucket" 1 (Histogram.count h 2)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 2; 2 ];
  List.iter (Histogram.add b) [ 2; 7 ];
  Histogram.merge_into ~into:a b;
  Alcotest.(check int) "overlapping bucket sums" 3 (Histogram.count a 2);
  Alcotest.(check int) "new bucket carried over" 1 (Histogram.count a 7);
  Alcotest.(check int) "total" 5 (Histogram.total a);
  Alcotest.(check int) "source untouched" 2 (Histogram.total b);
  Histogram.clear a;
  Alcotest.(check int) "clear drops counts" 0 (Histogram.total a);
  Alcotest.(check int) "clear drops max" (-1) (Histogram.max_observed a)

let test_histogram_merge_matches_concat () =
  (* Merging per-shard histograms must equal histogramming the
     concatenated samples - the property the per-backend metric merge
     relies on. *)
  let g = Prng.create 11 in
  let xs = List.init 200 (fun _ -> Prng.int g 50) in
  let ys = List.init 120 (fun _ -> Prng.int g 50) in
  let ha = Histogram.create () and hb = Histogram.create () and hall = Histogram.create () in
  List.iter (Histogram.add ha) xs;
  List.iter (Histogram.add hb) ys;
  List.iter (Histogram.add hall) (xs @ ys);
  Histogram.merge_into ~into:ha hb;
  Alcotest.(check (list (pair int int))) "same distribution"
    (Histogram.to_assoc hall) (Histogram.to_assoc ha)

let test_histogram_negative () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add: negative value") (fun () ->
      Histogram.add h (-1))

(* --- Table --- *)

let test_table_render () =
  let out = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: row1 :: _ ->
      Alcotest.(check bool) "header padded" true (String.length header = String.length rule);
      Alcotest.(check bool) "row aligned" true (String.length row1 = String.length header)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "contains a" true (String.length out > 0)

let test_table_short_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_to_csv () =
  let csv = Table.to_csv ~header:[ "a"; "b" ] [ [ "1"; "x,y" ]; [ "he said \"hi\""; "plain" ] ] in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "a,b" (List.nth lines 0);
  Alcotest.(check string) "comma quoted" "1,\"x,y\"" (List.nth lines 1);
  Alcotest.(check string) "quotes doubled" "\"he said \"\"hi\"\"\",plain" (List.nth lines 2);
  Alcotest.(check bool) "ends with newline" true (csv.[String.length csv - 1] = '\n')

let test_csv_sink () =
  let dir = Filename.temp_file "csv_sink" "" in
  Sys.remove dir;
  Table.set_csv_sink (Some dir);
  Table.print ~header:[ "col one"; "col two" ] [ [ "1"; "2" ] ];
  Table.print ~header:[ "other" ] [ [ "3" ] ];
  Table.set_csv_sink None;
  let files = Sys.readdir dir in
  Array.sort compare files;
  Alcotest.(check int) "two captures" 2 (Array.length files);
  Alcotest.(check bool) "numbered" true
    (String.length files.(0) > 4 && String.sub files.(0) 0 4 = "001_");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Sys.rmdir dir

let test_float_cell () =
  Alcotest.(check string) "default decimals" "1.234" (Table.float_cell 1.2344);
  Alcotest.(check string) "one decimal" "1.2" (Table.float_cell ~decimals:1 1.2345)

(* --- Ascii_plot --- *)

let test_plot_empty () =
  Alcotest.(check string) "no points" "" (Ascii_plot.render [ { Ascii_plot.label = "x"; points = [] } ])

let test_plot_contains_glyphs () =
  let out =
    Ascii_plot.render
      [
        { Ascii_plot.label = "up"; points = [ (0.0, 0.0); (1.0, 1.0) ] };
        { Ascii_plot.label = "down"; points = [ (0.0, 1.0); (1.0, 0.0) ] };
      ]
  in
  Alcotest.(check bool) "glyph 1" true (String.contains out '*');
  Alcotest.(check bool) "glyph 2" true (String.contains out '+');
  Alcotest.(check bool) "legend mentions labels" true (String.length out > 0)

let suite =
  let q t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t in
  ( "stats",
    [
      Alcotest.test_case "stats empty" `Quick test_stats_empty;
      Alcotest.test_case "stats known values" `Quick test_stats_known_values;
      Alcotest.test_case "stats merge" `Quick test_stats_merge_matches_concat;
      Alcotest.test_case "stats merge empty" `Quick test_stats_merge_with_empty;
      q qcheck_merge;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "percentile pure" `Quick test_percentile_does_not_mutate;
      Alcotest.test_case "mean_of" `Quick test_mean_of;
      Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
      Alcotest.test_case "histogram assoc/ccdf" `Quick test_histogram_assoc_ccdf;
      Alcotest.test_case "histogram ccdf monotone" `Quick test_histogram_ccdf_monotone;
      Alcotest.test_case "histogram log2 buckets" `Quick test_histogram_log2_buckets;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      Alcotest.test_case "histogram merge = concat" `Quick test_histogram_merge_matches_concat;
      Alcotest.test_case "histogram negative" `Quick test_histogram_negative;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table short rows" `Quick test_table_short_rows;
      Alcotest.test_case "float cell" `Quick test_float_cell;
      Alcotest.test_case "to_csv" `Quick test_to_csv;
      Alcotest.test_case "csv sink" `Quick test_csv_sink;
      Alcotest.test_case "plot empty" `Quick test_plot_empty;
      Alcotest.test_case "plot glyphs" `Quick test_plot_contains_glyphs;
    ] )
