(* End-to-end causal tracing: span contexts and scoped spans, tail
   exemplars and their exports, offline critical-path analysis, registry
   introspection across every backend, and the cross-failover guarantee
   that one join stays one trace. *)

open Simkit

let contains needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- span contexts ----------------------------------------------------- *)

let test_context_allocation () =
  let s = Span.buffer () in
  let root = Span.context s () in
  Alcotest.(check int) "root trace id = own span id" root.Span.span_id root.Span.trace_id;
  Alcotest.(check bool) "root has no parent" true (root.Span.parent_span_id = None);
  let child = Span.context s ~parent:root () in
  Alcotest.(check int) "child inherits trace" root.Span.trace_id child.Span.trace_id;
  Alcotest.(check bool) "child parented" true (child.Span.parent_span_id = Some root.Span.span_id);
  Alcotest.(check bool) "ids distinct" true (child.Span.span_id <> root.Span.span_id);
  let other_root = Span.context s () in
  Alcotest.(check bool) "new root = new trace" true
    (other_root.Span.trace_id <> root.Span.trace_id);
  Alcotest.(check bool) "noop hands out null context" true
    (Span.context Span.noop () = Span.null_context)

let test_ambient_context () =
  let s = Span.buffer () in
  let outer = Span.context s () in
  let inner = Span.context s ~parent:outer () in
  Alcotest.(check bool) "no ambient outside scopes" true (Span.current s = None);
  Span.with_context s outer (fun () ->
      Alcotest.(check bool) "outer ambient" true (Span.current s = Some outer);
      Span.with_context s inner (fun () ->
          Alcotest.(check bool) "innermost wins" true (Span.current s = Some inner));
      Alcotest.(check bool) "outer restored" true (Span.current s = Some outer));
  Alcotest.(check bool) "empty after scopes" true (Span.current s = None);
  (* The scope must unwind on exceptions too. *)
  (try Span.with_context s outer (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" true (Span.current s = None)

let test_with_span_closes_on_exception () =
  let s = Span.buffer () in
  (match Span.with_span s ~name:"op" [] (fun _ -> failwith "boom") with
  | _ -> Alcotest.fail "expected the exception to propagate"
  | exception Failure m -> Alcotest.(check string) "re-raised" "boom" m);
  match Span.events s with
  | [ e ] ->
      Alcotest.(check string) "span still emitted" "op" e.Span.name;
      Alcotest.(check bool) "flagged as error" true (List.mem_assoc "error" e.Span.args)
  | evs -> Alcotest.failf "expected exactly one event, got %d" (List.length evs)

let test_finish_idempotent () =
  let s = Span.buffer () in
  let span = Span.start_span s ~name:"attempt" ~ts:10.0 [] in
  Span.finish ~ts:25.0 span;
  Span.finish ~ts:99.0 span;
  match Span.events s with
  | [ e ] -> Alcotest.(check (float 1e-9)) "first close wins" 15.0 e.Span.dur
  | evs -> Alcotest.failf "expected exactly one event, got %d" (List.length evs)

(* --- tail exemplars ----------------------------------------------------- *)

let test_exemplars () =
  let t = Trace.create () in
  Trace.observe ~trace_id:7 t "lat" 3.0 (* bucket 2 *);
  Trace.observe ~trace_id:9 t "lat" 4.0 (* bucket 2: later sample wins *);
  Trace.observe ~trace_id:11 t "lat" 1000.0 (* bucket 10 *);
  Trace.observe t "lat" 2000.0 (* untagged: not an exemplar *);
  Trace.observe ~trace_id:0 t "lat" 4000.0 (* null context: ignored *);
  (match Trace.exemplars t "lat" with
  | [ a; b ] ->
      Alcotest.(check int) "low bucket" 2 a.Trace.bucket;
      Alcotest.(check int) "latest sample wins the bucket" 9 a.Trace.trace_id;
      Alcotest.(check int) "high bucket" 10 b.Trace.bucket;
      Alcotest.(check int) "tail trace id" 11 b.Trace.trace_id
  | l -> Alcotest.failf "expected 2 exemplars, got %d" (List.length l));
  (match Trace.top_exemplar t "lat" with
  | Some e -> Alcotest.(check int) "top = highest bucket" 11 e.Trace.trace_id
  | None -> Alcotest.fail "missing top exemplar");
  Alcotest.(check bool) "untagged stream has none" true (Trace.exemplars t "nope" = [])

let test_exemplar_export () =
  let t = Trace.create () in
  Trace.observe ~trace_id:42 t "join_ms" 100.0;
  Trace.observe t "plain" 5.0;
  let doc = Export.metrics_json [ ("run", t) ] in
  Alcotest.(check bool) "json exemplars present" true (contains "\"exemplars\"" doc);
  Alcotest.(check bool) "json trace id" true (contains "\"trace_id\": 42" doc);
  let prom = Export.prometheus [ ("run", t) ] in
  Alcotest.(check bool) "histogram series" true
    (contains "# TYPE nearby_run_join_ms_hist histogram" prom);
  Alcotest.(check bool) "openmetrics exemplar" true (contains "# {trace_id=\"42\"}" prom);
  Alcotest.(check bool) "+Inf bucket" true (contains "le=\"+Inf\"" prom);
  (* Streams without exemplars must not grow a histogram block. *)
  Alcotest.(check bool) "plain stream unchanged" false (contains "plain_hist" prom);
  (* The document as a whole must stay parseable JSON. *)
  match Json.parse doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics json no longer parses: %s" e

(* --- JSON string building round-trips ----------------------------------- *)

let test_json_str_roundtrip () =
  let nasty =
    [ ""; "plain"; "with \"quotes\""; "back\\slash"; "tab\tnewline\ncr\r"; "ctrl\x01\x1f";
      "unicode \xc3\xa9"; "{\"not\": \"json\"}" ]
  in
  List.iter
    (fun s ->
      match Json.parse (Json_str.quote s) with
      | Ok j -> (
          match Json.to_string j with
          | Some s' -> Alcotest.(check string) "string survives quote+parse" s s'
          | None -> Alcotest.failf "quote %S parsed to a non-string" s)
      | Error e -> Alcotest.failf "quote %S does not parse: %s" s e)
    nasty;
  (* obj/arr assemble documents Json.parse accepts, keys escaped. *)
  let doc =
    Json_str.obj
      [ ("a\"b", Json_str.number 1.5); ("list", Json_str.arr [ "1"; "2" ]);
        ("nan", Json_str.number Float.nan) ]
  in
  match Json.parse doc with
  | Error e -> Alcotest.failf "obj output does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option (float 1e-9))) "escaped key readable" (Some 1.5)
        (Option.bind (Json.member "a\"b" j) Json.to_float);
      Alcotest.(check bool) "nan rendered null" true (Json.member "nan" j <> None)

(* --- critical-path analysis --------------------------------------------- *)

(* A hand-built tree exercising the clamp and self-time rules:
     root [0, 100]
       a [10, 40]
       b [30, 90]
         c [35, 95]  (outlives b: clamped at 90)
   Backwards walk: root self (90,100], b's subtree bounded at 90 where c
   owns (35,90] and b keeps (30,35], a owns (10,40] up to b's start at 30 so
   (10,30], root self (0,10].  Total = 100. *)
let test_critical_path () =
  let s = Span.buffer () in
  let root = Span.context s () in
  let a = Span.context s ~parent:root () in
  let b = Span.context s ~parent:root () in
  let c = Span.context s ~parent:b () in
  Span.emit s ~name:"join" ~ts:0.0 ~dur:100.0 ~ctx:root [];
  Span.emit s ~name:"measure" ~ts:10.0 ~dur:30.0 ~ctx:a [];
  Span.emit s ~name:"rpc_attempt" ~ts:30.0 ~dur:60.0 ~ctx:b [];
  Span.emit s ~name:"replicate" ~ts:35.0 ~dur:60.0 ~ctx:c [];
  let spans, untraced = Trace_analysis.of_jsonl_string (Span.to_jsonl s) in
  Alcotest.(check int) "all events carry causal ids" 0 untraced;
  match Trace_analysis.traces spans with
  | [ t ] ->
      Alcotest.(check int) "tree holds all spans" 4 t.Trace_analysis.span_count;
      Alcotest.(check int) "no orphans" 0 t.Trace_analysis.orphans;
      let segs = Trace_analysis.critical_path t in
      let total =
        List.fold_left
          (fun acc (seg : Trace_analysis.segment) ->
            acc +. (seg.Trace_analysis.to_ms -. seg.Trace_analysis.from_ms))
          0.0 segs
      in
      Alcotest.(check (float 1e-6)) "segments cover the root duration" 100.0 total;
      let ms kind =
        List.fold_left
          (fun acc (b : Trace_analysis.breakdown) ->
            if b.Trace_analysis.kind = kind then acc +. b.Trace_analysis.total_ms else acc)
          0.0
          (Trace_analysis.by_kind segs)
      in
      Alcotest.(check (float 1e-6)) "clamped leaf" 55.0 (ms "replicate");
      Alcotest.(check (float 1e-6)) "parent keeps pre-child time" 5.0 (ms "rpc_attempt");
      Alcotest.(check (float 1e-6)) "sibling up to successor start" 20.0 (ms "measure");
      Alcotest.(check (float 1e-6)) "root self time" 20.0 (ms "join");
      let report = Trace_analysis.analyze ~untraced spans in
      Alcotest.(check string) "root kind" "join" report.Trace_analysis.root_name;
      Alcotest.(check bool) "report renders breakdown" true
        (contains "rpc_attempt" (Trace_analysis.report_to_string report))
  | ts -> Alcotest.failf "expected 1 trace, got %d" (List.length ts)

let test_multiple_roots_kept_longest () =
  let s = Span.buffer () in
  let root = Span.context s () in
  (* Two parentless spans in one trace id: the longer one must win. *)
  Span.emit s ~name:"short" ~ts:0.0 ~dur:5.0
    ~ctx:{ root with Span.span_id = root.Span.span_id + 1000 }
    [];
  Span.emit s ~name:"long" ~ts:0.0 ~dur:50.0 ~ctx:root [];
  let spans, _ = Trace_analysis.of_jsonl_string (Span.to_jsonl s) in
  match Trace_analysis.traces spans with
  | [ t ] ->
      Alcotest.(check string) "longest parentless span is root" "long"
        t.Trace_analysis.root.Trace_analysis.span.Trace_analysis.name;
      Alcotest.(check int) "the other counts as orphan" 1 t.Trace_analysis.orphans
  | ts -> Alcotest.failf "expected 1 trace, got %d" (List.length ts)

(* --- registry introspection --------------------------------------------- *)

let lmk = 99

let paths =
  (* Router 5 is shared by three peers, router 1 by two: known occupancy. *)
  [ (0, [| 1; 5; lmk |]); (1, [| 2; 5; lmk |]); (2, [| 1; 5; lmk |]); (3, [| 7; lmk |]) ]

let test_introspect_all_backends () =
  List.iter
    (fun spec ->
      let name = Eval.Backends.to_string spec in
      let reg = Nearby.Registry_intf.create (Eval.Backends.backend spec) ~landmark:lmk in
      List.iter (fun (peer, routers) -> Nearby.Registry_intf.insert reg ~peer ~routers) paths;
      let i = Nearby.Registry_intf.introspect reg in
      Alcotest.(check int) (name ^ ": members") 4 i.Nearby.Registry_intf.members;
      Alcotest.(check bool) (name ^ ": routers known") true (i.Nearby.Registry_intf.routers > 0);
      Alcotest.(check bool)
        (name ^ ": footprint positive") true
        (i.Nearby.Registry_intf.approx_bytes > 0);
      Alcotest.(check int)
        (name ^ ": occupancy totals the buckets")
        i.Nearby.Registry_intf.routers
        (Prelude.Histogram.total i.Nearby.Registry_intf.occupancy);
      (match i.Nearby.Registry_intf.hot_routers with
      | (hot, size) :: rest ->
          (* Every path ends at the landmark, so its bucket holds everyone. *)
          Alcotest.(check int) (name ^ ": hottest router is the landmark") lmk hot;
          Alcotest.(check int) (name ^ ": landmark bucket holds all peers") 4 size;
          List.fold_left
            (fun prev (_, s) ->
              Alcotest.(check bool) (name ^ ": hot list descending") true (s <= prev);
              s)
            size rest
          |> ignore
      | [] -> Alcotest.fail (name ^ ": empty hot list"));
      Alcotest.(check bool)
        (name ^ ": top-k bounded") true
        (List.length i.Nearby.Registry_intf.hot_routers <= Nearby.Registry_intf.hot_router_k);
      match Json.parse (Nearby.Registry_intf.introspection_json i) with
      | Ok j ->
          Alcotest.(check (option (float 1e-9)))
            (name ^ ": json members")
            (Some 4.0)
            (Option.bind (Json.member "members" j) Json.to_float)
      | Error e -> Alcotest.failf "%s: introspection json does not parse: %s" name e)
    Eval.Backends.all

let test_merge_introspections () =
  let part sizes =
    Nearby.Registry_intf.introspection_of_buckets ~members:(List.length sizes) ~approx_bytes:64
      (fun f -> List.iter (fun (r, s) -> f r s) sizes)
  in
  let a = part [ (1, 4); (2, 1) ] in
  let b = part [ (1, 3); (9, 2) ] in
  let m = Nearby.Registry_intf.merge_introspections [ a; b ] in
  Alcotest.(check int) "members add" 4 m.Nearby.Registry_intf.members;
  Alcotest.(check int) "bucket counts add" 4 m.Nearby.Registry_intf.routers;
  Alcotest.(check int) "occupancy merged bucket-wise" 4
    (Prelude.Histogram.total m.Nearby.Registry_intf.occupancy);
  Alcotest.(check int) "bytes add" 128 m.Nearby.Registry_intf.approx_bytes;
  (match m.Nearby.Registry_intf.hot_routers with
  | (r, s) :: _ ->
      Alcotest.(check int) "split router re-ranked by summed size" 1 r;
      Alcotest.(check int) "sizes summed across parts" 7 s
  | [] -> Alcotest.fail "empty merged hot list");
  let empty = Nearby.Registry_intf.merge_introspections [] in
  Alcotest.(check int) "empty merge" 0 empty.Nearby.Registry_intf.members

let test_sharded_introspect_members () =
  (* A sharded registry partitions peers but shares routers: members must
     come from the authoritative home table, not the per-shard sum. *)
  let reg =
    Nearby.Registry_intf.create
      (Eval.Backends.backend (Eval.Backends.Sharded { shards = 4 }))
      ~landmark:lmk
  in
  List.iter (fun (peer, routers) -> Nearby.Registry_intf.insert reg ~peer ~routers) paths;
  let i = Nearby.Registry_intf.introspect reg in
  Alcotest.(check int) "members not double counted" 4 i.Nearby.Registry_intf.members

(* --- instrumented registry causality ------------------------------------ *)

let test_instrumented_spans_parent_on_ambient () =
  let metrics = Trace.create () in
  let spans = Span.buffer () in
  let backend =
    Nearby.Instrumented_registry.make ~spans ~metrics (module Nearby.Path_tree)
  in
  let reg = Nearby.Registry_intf.create backend ~landmark:lmk in
  let outer = Span.context spans () in
  Span.with_context spans outer (fun () ->
      Nearby.Registry_intf.insert reg ~peer:0 ~routers:[| 1; 5; lmk |]);
  (match Span.events spans with
  | [ e ] -> (
      Alcotest.(check string) "op span emitted" "registry_insert" e.Span.name;
      match e.Span.ctx with
      | Some ctx ->
          Alcotest.(check int) "same trace as ambient" outer.Span.trace_id ctx.Span.trace_id;
          Alcotest.(check bool) "parented under ambient" true
            (ctx.Span.parent_span_id = Some outer.Span.span_id)
      | None -> Alcotest.fail "op span lost its context")
  | evs -> Alcotest.failf "expected one op span, got %d" (List.length evs));
  (* The latency sample must carry the ambient trace id as its exemplar. *)
  match Trace.top_exemplar metrics Nearby.Instrumented_registry.insert_ns with
  | Some e -> Alcotest.(check int) "exemplar cross-link" outer.Span.trace_id e.Trace.trace_id
  | None -> Alcotest.fail "insert sample not tagged"

(* --- cross-failover causality ------------------------------------------- *)

let test_failover_joins_stay_one_trace () =
  let spans = Span.buffer () in
  (* The quick config is big enough that some arrivals land while the
     primary is down, forcing retried attempts against other replicas. *)
  let config =
    { Eval.Resilience_exp.quick_config with Eval.Resilience_exp.scenario = "crash-primary" }
  in
  let result, _ = Eval.Resilience_exp.run_instrumented ~spans config in
  Alcotest.(check int) "every join completed" config.Eval.Resilience_exp.peers result.completed;
  let spans', untraced = Trace_analysis.of_jsonl_string (Span.to_jsonl spans) in
  Alcotest.(check int) "no untraced events" 0 untraced;
  (* At least one join must have failed over between replicas — and its
     attempts against different targets must still share one trace. *)
  let by_trace = Hashtbl.create 64 in
  List.iter
    (fun (s : Trace_analysis.span) ->
      if s.Trace_analysis.name = "rpc_attempt" then
        Hashtbl.replace by_trace s.Trace_analysis.trace_id
          (s :: (Option.value ~default:[] (Hashtbl.find_opt by_trace s.Trace_analysis.trace_id))))
    spans';
  let failover_traces =
    Hashtbl.fold (fun _ atts acc -> if List.length atts > 1 then acc + 1 else acc) by_trace 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "retried joins keep one trace id (%d found)" failover_traces)
    true (failover_traces > 0);
  (* Every tree must reconstruct rooted at a join (or a sync round). *)
  List.iter
    (fun (t : Trace_analysis.trace) ->
      let root = t.Trace_analysis.root.Trace_analysis.span.Trace_analysis.name in
      Alcotest.(check bool)
        (Printf.sprintf "trace #%d rooted at a request (%s)" t.Trace_analysis.trace_id root)
        true
        (root = "join" || root = "sync_round"))
    (Trace_analysis.traces spans')

let suite =
  ( "observability",
    [
      Alcotest.test_case "context allocation" `Quick test_context_allocation;
      Alcotest.test_case "ambient context scoping" `Quick test_ambient_context;
      Alcotest.test_case "with_span closes on exception" `Quick test_with_span_closes_on_exception;
      Alcotest.test_case "finish idempotent" `Quick test_finish_idempotent;
      Alcotest.test_case "tail exemplars" `Quick test_exemplars;
      Alcotest.test_case "exemplar export" `Quick test_exemplar_export;
      Alcotest.test_case "json_str round-trips" `Quick test_json_str_roundtrip;
      Alcotest.test_case "critical path" `Quick test_critical_path;
      Alcotest.test_case "multiple roots" `Quick test_multiple_roots_kept_longest;
      Alcotest.test_case "introspect all backends" `Quick test_introspect_all_backends;
      Alcotest.test_case "merge introspections" `Quick test_merge_introspections;
      Alcotest.test_case "sharded members exact" `Quick test_sharded_introspect_members;
      Alcotest.test_case "instrumented spans parent on ambient" `Quick
        test_instrumented_spans_parent_on_ambient;
      Alcotest.test_case "failover joins stay one trace" `Quick
        test_failover_joins_stay_one_trace;
    ] )
